package uncore

import (
	"fmt"

	"github.com/coyote-sim/coyote/internal/evsim"
	"github.com/coyote-sim/coyote/internal/san"
)

// MemCtrl models one memory channel: a fixed access latency plus a
// bandwidth limit. Each line transfer occupies the channel for
// lineBytes/bytesPerCycle cycles; requests arriving while the channel is
// busy queue behind it (tracked with a next-free-cycle watermark — the
// classic latency-bandwidth "simple" controller the paper notes is a
// placeholder pending the MCPU model).
type MemCtrl struct {
	id        int
	eng       *evsim.Engine
	latency   evsim.Cycle
	occupancy evsim.Cycle // channel cycles per line
	nextFree  evsim.Cycle
	san       san.Channel

	// Optional open-row model: rowBits > 0 keeps one open row per DRAM
	// bank; accesses hitting an open row complete in rowHitLat instead of
	// latency. Banks are selected by the bits above the row index, so
	// independent streams (e.g. a read and a write stream) keep their own
	// rows open — the behaviour that makes row-buffer locality visible.
	rowBits   uint
	rowHitLat evsim.Cycle
	openRow   []uint64
	rowValid  []bool

	reads      uint64
	writes     uint64
	stallCycle uint64 // cycles requests spent queued behind the channel
	rowHits    uint64
	rowMisses  uint64
}

func newMemCtrl(id int, eng *evsim.Engine, cfg Config) *MemCtrl {
	occ := evsim.Cycle((cfg.L2.LineBytes + cfg.MemBytesPerCyc - 1) / cfg.MemBytesPerCyc)
	if occ == 0 {
		occ = 1
	}
	banks := cfg.MemBanks
	if banks <= 0 {
		banks = 8
	}
	m := &MemCtrl{
		id: id, eng: eng, latency: cfg.MemLatency, occupancy: occ,
		rowBits: cfg.MemRowBits, rowHitLat: cfg.MemRowHitLat,
		openRow: make([]uint64, banks), rowValid: make([]bool, banks),
	}
	m.san.Init(fmt.Sprintf("mc%d.channel", id))
	return m
}

// accessLatency applies the row-buffer model to one access.
func (m *MemCtrl) accessLatency(addr uint64) evsim.Cycle {
	if m.rowBits == 0 {
		return m.latency
	}
	row := addr >> m.rowBits
	// XOR-fold the row index into the bank selector so streams whose rows
	// differ by a multiple of the bank count still land in distinct banks.
	bank := (row ^ row>>3 ^ row>>6) % uint64(len(m.openRow))
	if m.rowValid[bank] && row == m.openRow[bank] {
		m.rowHits++
		return m.rowHitLat
	}
	m.rowMisses++
	m.openRow[bank] = row
	m.rowValid[bank] = true
	return m.latency
}

// ID returns the controller index.
func (m *MemCtrl) ID() int { return m.id }

// Reads returns the number of line reads serviced.
func (m *MemCtrl) Reads() uint64 { return m.reads }

// Writes returns the number of line writes serviced.
func (m *MemCtrl) Writes() uint64 { return m.writes }

// request services one line transfer; done (if set) fires when the data
// has returned to the requester, extraDelay cycles (the response
// traversal) after the DRAM access completes. Completions are scheduled
// as arg-carrying events — no closure, no allocation.
//
//coyote:allocfree
func (m *MemCtrl) request(addr uint64, write bool, extraDelay evsim.Cycle, done Done) {
	now := m.eng.Now()
	start := now
	if m.nextFree > start {
		m.stallCycle += uint64(m.nextFree - start)
		start = m.nextFree
	}
	m.nextFree = start + m.occupancy
	m.san.Grant(now, start, m.nextFree, m.occupancy)
	lat := m.accessLatency(addr)
	if write {
		m.writes++
		return
	}
	m.reads++
	if done.F != nil {
		m.eng.ScheduleArgAtH(start+lat+extraDelay, done.F, done.Arg, done.H)
	}
}

// Name implements evsim.Unit.
func (m *MemCtrl) Name() string { return fmt.Sprintf("mc%d", m.id) }

// Counters implements evsim.Unit.
func (m *MemCtrl) Counters() map[string]uint64 {
	c := map[string]uint64{
		"reads":        m.reads,
		"writes":       m.writes,
		"queue_cycles": m.stallCycle,
	}
	if m.rowBits > 0 {
		c["row_hits"] = m.rowHits
		c["row_misses"] = m.rowMisses
	}
	return c
}
