package uncore

import (
	"fmt"

	"github.com/coyote-sim/coyote/internal/cache"
)

// LLCSlice is one slice of the optional shared last-level cache sitting in
// front of a memory controller — the third cache level of the paper's
// Figure 2 example system ("Three levels of cache and 64 cores are
// depicted"). One slice per controller; lines are interleaved across
// slices by the same function that picks the controller.
type LLCSlice struct {
	id   int
	u    *Uncore
	tags *cache.Cache
	mshr map[uint64][]func()

	reads      uint64
	writes     uint64
	mshrMerges uint64
}

func newLLCSlice(id int, u *Uncore) (*LLCSlice, error) {
	tags, err := cache.New(u.cfg.LLC)
	if err != nil {
		return nil, fmt.Errorf("uncore: llc slice %d: %w", id, err)
	}
	return &LLCSlice{id: id, u: u, tags: tags, mshr: make(map[uint64][]func())}, nil
}

// CacheStats exposes the slice's tag statistics.
func (l *LLCSlice) CacheStats() cache.Stats { return l.tags.Stats }

// request handles a line read (done != nil fires extraDelay cycles after
// the data is available at the slice) or write.
func (l *LLCSlice) request(addr uint64, write bool, extraDelay uint64, done func()) {
	mc := l.u.mcs[l.id]
	if write {
		l.writes++
		res := l.tags.Access(addr, true)
		if res.HasWriteback {
			mc.request(res.Writeback, true, 0, nil)
		}
		if !res.Hit {
			// Write-allocate fetch, nobody waits on it.
			mc.request(addr, false, 0, nil)
		}
		return
	}
	l.reads++
	if waiters, inflight := l.mshr[addr]; inflight {
		l.mshrMerges++
		if done != nil {
			l.mshr[addr] = append(waiters, func() {
				l.u.eng.Schedule(extraDelay, done)
			})
		}
		return
	}
	res := l.tags.Access(addr, false)
	if res.HasWriteback {
		mc.request(res.Writeback, true, 0, nil)
	}
	if res.Hit {
		if done != nil {
			l.u.eng.Schedule(l.u.cfg.LLCHitLatency+extraDelay, done)
		}
		return
	}
	var waiters []func()
	if done != nil {
		waiters = append(waiters, func() {
			l.u.eng.Schedule(extraDelay, done)
		})
	}
	l.mshr[addr] = waiters
	mc.request(addr, false, 0, func() {
		ws := l.mshr[addr]
		delete(l.mshr, addr)
		for _, w := range ws {
			w()
		}
	})
}

// Name implements evsim.Unit.
func (l *LLCSlice) Name() string { return fmt.Sprintf("llc%d", l.id) }

// Counters implements evsim.Unit.
func (l *LLCSlice) Counters() map[string]uint64 {
	s := l.tags.Stats
	return map[string]uint64{
		"reads":       l.reads,
		"writes":      l.writes,
		"hits":        s.Hits,
		"misses":      s.Misses,
		"writebacks":  s.Writebacks,
		"mshr_merges": l.mshrMerges,
	}
}
