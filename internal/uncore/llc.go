package uncore

import (
	"fmt"

	"github.com/coyote-sim/coyote/internal/cache"
	"github.com/coyote-sim/coyote/internal/evsim"
	"github.com/coyote-sim/coyote/internal/san"
)

// llcWaiter is one read waiting on an in-flight LLC fill, remembering the
// response traversal to add once the data is available at the slice.
type llcWaiter struct {
	done  Done
	extra evsim.Cycle
}

// LLCSlice is one slice of the optional shared last-level cache sitting in
// front of a memory controller — the third cache level of the paper's
// Figure 2 example system ("Three levels of cache and 64 cores are
// depicted"). One slice per controller; lines are interleaved across
// slices by the same function that picks the controller.
//
// Like the L2 banks, the slice's miss path is allocation-free: waiters
// are recycled value slices and the fill completion is one pre-bound
// callback keyed by line address.
type LLCSlice struct {
	id   int
	u    *Uncore
	tags *cache.Cache
	mshr map[uint64][]llcWaiter
	san  san.MSHR

	waiterPool [][]llcWaiter
	fillFn     func(uint64) // pre-bound miss completion; arg is the line
	fillH      evsim.Handle

	reads      uint64
	writes     uint64
	mshrMerges uint64
}

func newLLCSlice(id int, u *Uncore) (*LLCSlice, error) {
	tags, err := cache.New(u.cfg.LLC)
	if err != nil {
		return nil, fmt.Errorf("uncore: llc slice %d: %w", id, err)
	}
	l := &LLCSlice{id: id, u: u, tags: tags, mshr: make(map[uint64][]llcWaiter)}
	l.san.Init(fmt.Sprintf("llc%d.mshr", id), 0) // in-flight set is unbounded; duplicate/leak checks only
	tags.SetSanName(fmt.Sprintf("llc%d.tags", id))
	l.fillFn = func(addr uint64) {
		ws := l.mshr[addr]
		l.san.Release(l.u.eng.Now(), addr)
		delete(l.mshr, addr)
		for _, w := range ws {
			l.u.eng.ScheduleArgH(w.extra, w.done.F, w.done.Arg, w.done.H)
		}
		if ws != nil {
			l.waiterPool = append(l.waiterPool, ws[:0])
		}
	}
	l.fillH = u.eng.RegisterFn(l.fillFn)
	return l, nil
}

func (l *LLCSlice) getWaiters() []llcWaiter {
	if n := len(l.waiterPool); n > 0 {
		w := l.waiterPool[n-1]
		l.waiterPool = l.waiterPool[:n-1]
		return w
	}
	return make([]llcWaiter, 0, 4) //coyote:alloc-ok pool refill: grows the waiter-list pool to its high-water mark once
}

// CacheStats exposes the slice's tag statistics.
func (l *LLCSlice) CacheStats() cache.Stats { return l.tags.Stats }

// request handles a line read (done fires extraDelay cycles after the
// data is available at the slice) or write.
//
//coyote:allocfree
func (l *LLCSlice) request(addr uint64, write bool, extraDelay evsim.Cycle, done Done) {
	mc := l.u.mcs[l.id]
	if write {
		l.writes++
		res := l.tags.Access(addr, true)
		if res.HasWriteback {
			mc.request(res.Writeback, true, 0, Done{})
		}
		if !res.Hit {
			//coyote:portproto-ok write-allocate fetch: the write already completed at the slice, the fetch only warms the line
			mc.request(addr, false, 0, Done{})
		}
		return
	}
	l.reads++
	if waiters, inflight := l.mshr[addr]; inflight {
		l.mshrMerges++
		l.san.Merge(l.u.eng.Now(), addr)
		if done.F != nil {
			if waiters == nil {
				waiters = l.getWaiters()
			}
			waiters = append(waiters, llcWaiter{done: done, extra: extraDelay})
			l.mshr[addr] = waiters
		}
		return
	}
	res := l.tags.Access(addr, false)
	if res.HasWriteback {
		mc.request(res.Writeback, true, 0, Done{})
	}
	if res.Hit {
		if done.F != nil {
			l.u.eng.ScheduleArgH(l.u.cfg.LLCHitLatency+extraDelay, done.F, done.Arg, done.H)
		}
		return
	}
	var waiters []llcWaiter
	if done.F != nil {
		waiters = l.getWaiters()
		waiters = append(waiters, llcWaiter{done: done, extra: extraDelay})
	}
	l.san.Insert(l.u.eng.Now(), addr)
	l.mshr[addr] = waiters
	mc.request(addr, false, 0, Done{F: l.fillFn, Arg: addr, H: l.fillH})
}

// Name implements evsim.Unit.
func (l *LLCSlice) Name() string { return fmt.Sprintf("llc%d", l.id) }

// Counters implements evsim.Unit.
func (l *LLCSlice) Counters() map[string]uint64 {
	s := l.tags.Stats
	return map[string]uint64{
		"reads":       l.reads,
		"writes":      l.writes,
		"hits":        s.Hits,
		"misses":      s.Misses,
		"writebacks":  s.Writebacks,
		"mshr_merges": l.mshrMerges,
	}
}
