// Package uncore models everything below the private L1s — the part of
// Coyote that Sparta simulates: banked L2 caches (shared or tile-private,
// with MSHRs and two address-to-bank mapping policies), an idealized
// crossbar NoC with fixed configurable latencies, and bandwidth-limited
// memory controllers. All components are event-driven units on an
// evsim.Engine; the orchestrator advances the engine in lock-step with the
// instruction-level CPU model (paper §III-A).
package uncore

import (
	"fmt"

	"github.com/coyote-sim/coyote/internal/cache"
	"github.com/coyote-sim/coyote/internal/evsim"
	"github.com/coyote-sim/coyote/internal/san"
)

// MappingPolicy selects which address bits pick the L2 bank that owns a
// line (paper §III-A: "page-to-bank and set-interleaving").
type MappingPolicy int

const (
	// SetInterleave uses the bits directly above the line offset, spreading
	// consecutive lines across banks.
	SetInterleave MappingPolicy = iota
	// PageToBank uses the bits above the 4 KiB page offset, keeping each
	// page in one bank.
	PageToBank
)

func (p MappingPolicy) String() string {
	switch p {
	case SetInterleave:
		return "set-interleave"
	case PageToBank:
		return "page-to-bank"
	default:
		return fmt.Sprintf("MappingPolicy(%d)", int(p))
	}
}

// ParseMapping resolves a policy name.
func ParseMapping(s string) (MappingPolicy, error) {
	switch s {
	case "set-interleave", "":
		return SetInterleave, nil
	case "page-to-bank":
		return PageToBank, nil
	default:
		return 0, fmt.Errorf("uncore: unknown mapping policy %q", s)
	}
}

// Config describes the uncore topology and latencies.
type Config struct {
	Tiles          int
	BanksPerTile   int
	L2             cache.Config // geometry of one bank
	L2Shared       bool         // line space interleaved across ALL banks vs per-tile
	Mapping        MappingPolicy
	L2HitLatency   evsim.Cycle // bank lookup on hit
	L2MissLatency  evsim.Cycle // bank lookup + miss issue
	L2MSHRs        int         // max in-flight misses per bank
	NoCLatency     evsim.Cycle // crossbar traversal, cross-tile
	LocalLatency   evsim.Cycle // core ↔ same-tile bank hop
	MemCtrls       int
	MemLatency     evsim.Cycle // DRAM access latency
	MemBytesPerCyc int         // per-controller bandwidth

	// Optional shared last-level cache in front of the memory controllers
	// (the third cache level of the paper's Figure 2 example): one slice
	// per controller, lines interleaved across slices.
	LLCEnable     bool
	LLC           cache.Config
	LLCHitLatency evsim.Cycle

	// PrefetchDepth > 0 makes each L2 bank issue next-line prefetches for
	// that many sequential lines on every demand miss — the "prefetching,
	// streaming" data-management policies the paper lists as next steps
	// (§III-A).
	PrefetchDepth int

	// MemRowBits > 0 enables a DRAM row-buffer model in the memory
	// controllers: accesses hitting the open row (same addr >> MemRowBits)
	// complete in MemRowHitLat instead of MemLatency. MemBanks open rows
	// are kept per controller (default 8). Part of the memory controller
	// modelling the paper marks as work in progress.
	MemRowBits   uint
	MemRowHitLat evsim.Cycle
	MemBanks     int
}

// DefaultConfig mirrors DESIGN.md §6.
func DefaultConfig(tiles int) Config {
	return Config{
		Tiles:        tiles,
		BanksPerTile: 2,
		L2: cache.Config{
			SizeBytes: 256 << 10, Ways: 8, LineBytes: 64, WriteBack: true,
		},
		L2Shared:       true,
		Mapping:        SetInterleave,
		L2HitLatency:   10,
		L2MissLatency:  4,
		L2MSHRs:        16,
		NoCLatency:     8,
		LocalLatency:   2,
		MemCtrls:       max(1, tiles/4),
		MemLatency:     100,
		MemBytesPerCyc: 32,
		LLC: cache.Config{
			SizeBytes: 2 << 20, Ways: 16, LineBytes: 64, WriteBack: true,
		},
		LLCHitLatency: 30,
		MemRowHitLat:  40,
	}
}

// Validate checks topology consistency.
func (c Config) Validate() error {
	if c.Tiles <= 0 || c.BanksPerTile <= 0 {
		return fmt.Errorf("uncore: need positive tiles (%d) and banks per tile (%d)",
			c.Tiles, c.BanksPerTile)
	}
	nb := c.Tiles * c.BanksPerTile
	if nb&(nb-1) != 0 && c.L2Shared {
		return fmt.Errorf("uncore: shared L2 needs a power-of-two total bank count, got %d", nb)
	}
	if c.BanksPerTile&(c.BanksPerTile-1) != 0 {
		return fmt.Errorf("uncore: banks per tile must be a power of two, got %d", c.BanksPerTile)
	}
	if c.MemCtrls <= 0 {
		return fmt.Errorf("uncore: need at least one memory controller")
	}
	if c.MemBytesPerCyc <= 0 {
		return fmt.Errorf("uncore: memory bandwidth must be positive")
	}
	if c.L2MSHRs <= 0 {
		return fmt.Errorf("uncore: L2 MSHRs must be positive")
	}
	if c.PrefetchDepth < 0 {
		return fmt.Errorf("uncore: prefetch depth must be non-negative")
	}
	if c.LLCEnable {
		if err := c.LLC.Validate(); err != nil {
			return fmt.Errorf("uncore: LLC: %w", err)
		}
	}
	if c.MemRowBits > 0 && c.MemRowHitLat == 0 {
		return fmt.Errorf("uncore: row-buffer model needs MemRowHitLat")
	}
	return c.L2.Validate()
}

// Done is an allocation-free completion token: F is a long-lived
// pre-bound callback (one per hart, per pooled transaction, …) and Arg is
// a word of context distinguishing the completing request (a packed
// register number, an address …). The zero Done means "no completion".
// Carrying (F, Arg) by value through the uncore replaces the
// closure-per-miss style that dominated steady-state allocation.
//
// H is F's identity in the engine's callback registry — the serializable
// name of the function pointer. Every production Done carries it, so a
// pending completion can be checkpointed as (H, Arg) and resolved against
// the restoring engine's registry. A Done with F != nil but H == 0
// (FuncDone, test harnesses) still executes normally; it just cannot be
// checkpointed while in flight.
type Done struct {
	F   func(arg uint64)
	Arg uint64
	H   evsim.Handle
}

// Run invokes the completion; a zero Done is a no-op.
func (d Done) Run() {
	if d.F != nil {
		d.F(d.Arg)
	}
}

// FuncDone wraps a plain callback into a Done. Convenient for tests and
// one-off harness code; allocates a closure, so the hot paths build Done
// values from pre-bound callbacks instead.
func FuncDone(f func()) Done {
	return Done{F: func(uint64) { f() }}
}

// Request is one line-granular transaction entering the uncore.
type Request struct {
	Tile  int    // requesting tile (routing + private-L2 bank choice)
	Addr  uint64 // line base address
	Write bool   // writeback: no response expected
	// Done fires when the line is available at the L1 boundary. Zero for
	// writes.
	Done Done
}

// Uncore owns the banks, controllers and crossbar.
type Uncore struct {
	cfg   Config
	eng   *evsim.Engine
	banks []*L2Bank
	mcs   []*MemCtrl
	llcs  []*LLCSlice // nil unless cfg.LLCEnable
	mcpu  *MCPU
	noc   *NoC
	reg   evsim.Registry

	lineShift uint

	// bankShift/bankMask/bankShared are bankFor's mapping, folded to a
	// shift+mask at construction: the policy switch is constant per run,
	// and Validate enforces power-of-two bank counts for both sharing
	// modes. bankShared copies cfg.L2Shared next to the other two so the
	// hot path reads one cache line instead of reaching into cfg.
	bankShift  uint
	bankMask   uint64
	bankShared bool
}

// New wires up the uncore on an engine.
func New(cfg Config, eng *evsim.Engine) (*Uncore, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	u := &Uncore{cfg: cfg, eng: eng}
	for ls := cfg.L2.LineBytes; ls > 1; ls >>= 1 {
		u.lineShift++
	}
	u.noc = newNoC(eng, cfg.NoCLatency, cfg.LocalLatency)
	u.reg.Register(u.noc)
	u.mcpu = newMCPU(u)
	u.reg.Register(u.mcpu)
	for i := 0; i < cfg.MemCtrls; i++ {
		mc := newMemCtrl(i, eng, cfg)
		u.mcs = append(u.mcs, mc)
		u.reg.Register(mc)
		if cfg.LLCEnable {
			slice, err := newLLCSlice(i, u)
			if err != nil {
				return nil, err
			}
			u.llcs = append(u.llcs, slice)
			u.reg.Register(slice)
		}
	}
	for t := 0; t < cfg.Tiles; t++ {
		for b := 0; b < cfg.BanksPerTile; b++ {
			bank, err := newL2Bank(len(u.banks), t, u)
			if err != nil {
				return nil, err
			}
			u.banks = append(u.banks, bank)
			u.reg.Register(bank)
		}
	}
	switch cfg.Mapping {
	case PageToBank:
		u.bankShift = 12
	case SetInterleave:
		u.bankShift = u.lineShift
	default: // unknown policies behave like SetInterleave
		u.bankShift = u.lineShift
	}
	u.bankShared = cfg.L2Shared
	if cfg.L2Shared {
		u.bankMask = uint64(len(u.banks) - 1)
	} else {
		u.bankMask = uint64(cfg.BanksPerTile - 1)
	}
	return u, nil
}

// Config returns the uncore configuration.
func (u *Uncore) Config() Config { return u.cfg }

// Banks returns the L2 banks (for statistics inspection).
func (u *Uncore) Banks() []*L2Bank { return u.banks }

// MemCtrls returns the memory controllers.
func (u *Uncore) MemCtrls() []*MemCtrl { return u.mcs }

// NoC returns the crossbar.
func (u *Uncore) NoC() *NoC { return u.noc }

// Registry exposes every unit for statistics reporting.
func (u *Uncore) Registry() *evsim.Registry { return &u.reg }

// bankFor maps a line address (and requesting tile) to its owning bank
// via the shift+mask precomputed in New.
func (u *Uncore) bankFor(tile int, addr uint64) *L2Bank {
	local := (addr >> u.bankShift) & u.bankMask
	if u.bankShared {
		return u.banks[local]
	}
	return u.banks[uint64(tile)*uint64(u.cfg.BanksPerTile)+local]
}

// mcFor interleaves lines across memory controllers.
func (u *Uncore) mcFor(addr uint64) *MemCtrl {
	return u.mcs[(addr>>u.lineShift)%uint64(len(u.mcs))]
}

// memSide routes a transaction leaving the L2 level: through the LLC
// slice when enabled, straight to the memory controller otherwise.
func (u *Uncore) memSide(addr uint64, write bool, extraDelay evsim.Cycle, done Done) {
	idx := (addr >> u.lineShift) % uint64(len(u.mcs))
	if u.llcs != nil {
		u.llcs[idx].request(addr, write, extraDelay, done)
		return
	}
	u.mcs[idx].request(addr, write, extraDelay, done)
}

// LLCs returns the LLC slices (nil when disabled).
func (u *Uncore) LLCs() []*LLCSlice { return u.llcs }

// Submit injects a request at the current engine time. The request first
// traverses the interconnect to its bank (local hop if the bank lives in
// the requester's tile), is looked up, possibly misses to a memory
// controller, and finally Done fires back at the core side. The request
// value travels through the bank's inbound port FIFO — no allocation.
//
//coyote:allocfree
func (u *Uncore) Submit(req Request) {
	bank := u.bankFor(req.Tile, req.Addr)
	if bank.tile != req.Tile {
		u.noc.remoteMsgs++
		bank.remoteIn.Send(req)
	} else {
		u.noc.localMsgs++
		bank.localIn.Send(req)
	}
}

// Audit asserts the uncore's end-of-run invariants in the coyotesan
// build: no MSHR still holds an in-flight line after the engine drained
// (a leaked entry means a fill was dropped), and every tag store agrees
// with its shadow directory. No-op in the default build.
func (u *Uncore) Audit() {
	if !san.Enabled {
		return
	}
	now := u.eng.Now()
	for _, b := range u.banks {
		b.san.Drained(now)
		b.tags.Occupancy() // cross-checks the tag store against its shadow
	}
	for _, l := range u.llcs {
		l.san.Drained(now)
		l.tags.Occupancy()
	}
}

// Snapshot returns all unit counters keyed "unit.counter".
func (u *Uncore) Snapshot() map[string]uint64 { return u.reg.Snapshot() }

// ResetStats zeroes every unit's counters while leaving cache contents,
// open rows and in-flight state untouched — the warm-up/measure split.
func (u *Uncore) ResetStats() {
	for _, b := range u.banks {
		b.tags.ResetStats()
		b.reads, b.writes, b.missesIssued = 0, 0, 0
		b.mshrMerges, b.mshrConflicts, b.prefetches = 0, 0, 0
		b.peakMSHR = 0
	}
	for _, mc := range u.mcs {
		mc.reads, mc.writes, mc.stallCycle = 0, 0, 0
		mc.rowHits, mc.rowMisses = 0, 0
	}
	for _, l := range u.llcs {
		l.tags.ResetStats()
		l.reads, l.writes, l.mshrMerges = 0, 0, 0
	}
	u.mcpu.gathers, u.mcpu.scatters = 0, 0
	u.mcpu.elements, u.mcpu.lines = 0, 0
	u.noc.localMsgs, u.noc.remoteMsgs = 0, 0
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
