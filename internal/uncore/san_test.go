//go:build coyotesan

package uncore

import (
	"testing"

	"github.com/coyote-sim/coyote/internal/evsim"
)

// These workloads drive the real MSHR machinery with the sanitizer's
// shadow structures live. On the unmutated tree they must be violation
// free; their kill power is enforced by the coyotemut pinned corpus
// (internal/mut/testdata/pinned/san_layer.json), which seeds the classic
// shadow-maintenance faults — a dropped release, a dropped insert, an
// inverted invariant check — and asserts that exactly these tests, under
// -tags coyotesan, catch each one when every default-build oracle cannot.

// A clean run through the demand-miss machinery raises no violation and
// leaves every shadow table drained.
func TestSanCleanMissPath(t *testing.T) {
	u, err := New(DefaultConfig(1), evsim.NewEngine())
	if err != nil {
		t.Fatal(err)
	}
	fired := 0
	for i := 0; i < 64; i++ {
		u.Submit(Request{Addr: uint64(i) << 6, Done: FuncDone(func() { fired++ })})
		u.eng.Drain()
	}
	if fired != 64 {
		t.Fatalf("completions fired %d times, want 64", fired)
	}
	u.Audit()
}

// TestSanPrefetchPath drives the next-line prefetcher under the
// sanitizer: prefetch inserts, prefetch fills (which must arrive with no
// merged waiters) and the end-of-run audit all exercise the shadow MSHR's
// speculative arm. The default config leaves PrefetchDepth at 0, so
// without this workload the prefetch-side san calls would never execute
// under test — and the san-layer pinned mutants would survive.
func TestSanPrefetchPath(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.PrefetchDepth = 2
	u, err := New(cfg, evsim.NewEngine())
	if err != nil {
		t.Fatal(err)
	}
	fired := 0
	for i := 0; i < 64; i++ {
		u.Submit(Request{Addr: uint64(i) << 6, Done: FuncDone(func() { fired++ })})
		u.eng.Drain()
	}
	if fired != 64 {
		t.Fatalf("completions fired %d times, want 64", fired)
	}
	u.Audit()
}
