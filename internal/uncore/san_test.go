//go:build coyotesan

package uncore

import (
	"strings"
	"testing"

	"github.com/coyote-sim/coyote/internal/evsim"
	"github.com/coyote-sim/coyote/internal/san"
)

// These tests demonstrate the sanitizer catching seeded mutations of the
// MSHR machinery at runtime — the failure modes the static analyzers
// cannot see because they only appear in the transition dynamics.

func newSanUncore(t *testing.T) *Uncore {
	t.Helper()
	u, err := New(DefaultConfig(1), evsim.NewEngine())
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func wantViolation(t *testing.T, fragment string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		v, ok := r.(san.Violation)
		if !ok {
			t.Fatalf("want san.Violation panic, got %v", r)
		}
		if !strings.Contains(v.Error(), fragment) {
			t.Fatalf("violation %q missing %q", v.Error(), fragment)
		}
	}()
	f()
}

// Mutation: the fill path loses an MSHR release (entry never removed).
// The end-of-run audit reports the leaked line.
func TestSanCatchesLeakedMSHREntry(t *testing.T) {
	u := newSanUncore(t)
	b := u.banks[0]
	// Seed the mutation: an in-flight miss whose fill will never arrive,
	// exactly the state left behind by a dropped `delete(b.mshr, addr)`.
	b.san.Insert(u.eng.Now(), 0x1040)
	b.mshr[0x1040] = mshrEntry{state: mshrDemand}
	wantViolation(t, "leaked at drain", func() { u.Audit() })
}

// Mutation: a fill arrives for a line that was never inserted (double
// fill, or a release that already happened). Caught at the fill site.
func TestSanCatchesStrayFill(t *testing.T) {
	u := newSanUncore(t)
	b := u.banks[0]
	wantViolation(t, "no in-flight miss", func() { b.fill(0x2040, false) })
}

// Mutation: the merge path forgets to promote a prefetch entry to demand
// when a waiter attaches. The fill-side state switch catches it.
func TestSanCatchesLostPrefetchPromotion(t *testing.T) {
	u := newSanUncore(t)
	b := u.banks[0]
	b.san.Insert(u.eng.Now(), 0x3040)
	b.mshr[0x3040] = mshrEntry{
		state:   mshrPrefetch, // mutation: should have been promoted to mshrDemand
		waiters: []Done{{F: func(uint64) {}}},
	}
	wantViolation(t, "promotion to demand was lost", func() { b.fill(0x3040, false) })
}

// A clean run through the real machinery raises no violation and leaves
// every table drained.
func TestSanCleanMissPath(t *testing.T) {
	u := newSanUncore(t)
	fired := 0
	for i := 0; i < 64; i++ {
		u.Submit(Request{Addr: uint64(i) << 6, Done: FuncDone(func() { fired++ })})
		u.eng.Drain()
	}
	if fired != 64 {
		t.Fatalf("completions fired %d times, want 64", fired)
	}
	u.Audit()
}
