package uncore

// Functional warming: the memory side of core.RunFunctional. A
// fast-forwarded region executes ISA semantics only, but still walks each
// core-side request through the cache hierarchy so tag/dirty/LRU state
// stays warm — a subsequent detailed measurement window then starts from
// realistic cache contents instead of a cold hierarchy (the standard
// functional-warming discipline of sampled simulation).
//
// The walk mirrors the timed path's STATE effects exactly while skipping
// every timing mechanism: no ports, no MSHRs, no NoC hops, no scheduled
// events. Memory-controller row-buffer state is timing-only and left
// untouched. Statistics accrue on the units just as in the timed path;
// sampling drivers call ResetStats at the measurement boundary, so the
// warming traffic never leaks into measured counters.

// WarmAccess functionally applies one core-side request: the home L2
// bank's tags are accessed (allocate-on-miss, dirty on write), and on an
// L2 miss — or an L2 dirty eviction — the LLC slice is touched the same
// way the timed miss path would touch it.
func (u *Uncore) WarmAccess(tile int, addr uint64, write bool) {
	b := u.bankFor(tile, addr)
	if write {
		b.writes++
	} else {
		b.reads++
	}
	res := b.tags.WarmAccess(addr, write)
	if res.HasWriteback {
		u.warmMemSide(res.Writeback, true)
	}
	if !res.Hit {
		// The timed path fetches the missing line from the memory side as
		// a read, warming the LLC slice on the way.
		u.warmMemSide(addr, false)
	}
}

// WarmGather functionally applies an MCPU scatter/gather descriptor,
// which bypasses the L2 banks and goes straight to the memory side.
func (u *Uncore) WarmGather(lines []uint64, write bool) {
	for _, a := range lines {
		u.warmMemSide(a, write)
	}
}

// warmMemSide is the functional twin of memSide: touch the LLC slice's
// tags when the LLC exists; plain memory has no warmable state.
func (u *Uncore) warmMemSide(addr uint64, write bool) {
	if u.llcs == nil {
		return
	}
	l := u.llcs[(addr>>u.lineShift)%uint64(len(u.mcs))]
	if write {
		l.writes++
	} else {
		l.reads++
	}
	// Evicted dirty LLC lines would flow to the controller, which holds no
	// contents — the result is dropped deliberately.
	l.tags.WarmAccess(addr, write)
}
