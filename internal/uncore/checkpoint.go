package uncore

import (
	"fmt"
	"sort"

	"github.com/coyote-sim/coyote/internal/ckpt"
	"github.com/coyote-sim/coyote/internal/evsim"
)

// Checkpoint serializes the uncore's complete in-flight state: every
// bank's tag array, MSHR table, retry FIFO and inbound port queues, the
// LLC slices, the memory controllers' channel watermarks and open rows,
// the MCPU descriptor table, and all statistics. The matching calendar
// events are serialized by the engine; the two halves reference each
// other only through registry handles and MCPU slot ids, both of which
// are deterministic functions of the Config.
func (u *Uncore) Checkpoint(w *ckpt.Writer) error {
	for _, b := range u.banks {
		if err := b.checkpoint(w); err != nil {
			return err
		}
	}
	for _, l := range u.llcs {
		if err := l.checkpoint(w); err != nil {
			return err
		}
	}
	for _, mc := range u.mcs {
		mc.checkpoint(w)
	}
	u.mcpu.checkpoint(w)
	w.U64(u.noc.localMsgs)
	w.U64(u.noc.remoteMsgs)
	return nil
}

// Restore reloads the state written by Checkpoint into a freshly
// constructed uncore with the same Config, resynchronizing the coyotesan
// shadow structures (MSHR in-flight sets, tag directories) as it goes.
func (u *Uncore) Restore(r *ckpt.Reader) error {
	for _, b := range u.banks {
		if err := b.restore(r); err != nil {
			return err
		}
	}
	for _, l := range u.llcs {
		if err := l.restore(r); err != nil {
			return err
		}
	}
	for _, mc := range u.mcs {
		if err := mc.restore(r); err != nil {
			return err
		}
	}
	if err := u.mcpu.restore(r); err != nil {
		return err
	}
	u.noc.localMsgs = r.U64()
	u.noc.remoteMsgs = r.U64()
	return r.Err()
}

// ckptDone writes a completion token as (handle, arg). A completion built
// from an unregistered closure (FuncDone in tests) cannot be named in a
// checkpoint.
func ckptDone(w *ckpt.Writer, d Done) error {
	if d.F != nil && d.H == 0 {
		return fmt.Errorf("uncore: in-flight completion has no registry handle (test-only FuncDone?)")
	}
	w.U32(uint32(d.H))
	w.U64(d.Arg)
	return nil
}

func restoreDone(r *ckpt.Reader, eng *evsim.Engine) (Done, error) {
	h := evsim.Handle(r.U32())
	arg := r.U64()
	if h != 0 && int(h) > eng.Registered() {
		return Done{}, fmt.Errorf("uncore: checkpoint completion handle %d out of range", h)
	}
	return Done{F: eng.Fn(h), Arg: arg, H: h}, nil
}

func ckptRequest(w *ckpt.Writer, req Request) error {
	w.Int(req.Tile)
	w.U64(req.Addr)
	w.Bool(req.Write)
	return ckptDone(w, req.Done)
}

func restoreRequest(r *ckpt.Reader, eng *evsim.Engine) (Request, error) {
	var req Request
	req.Tile = r.Int()
	req.Addr = r.U64()
	req.Write = r.Bool()
	done, err := restoreDone(r, eng)
	if err != nil {
		return Request{}, err
	}
	req.Done = done
	return req, r.Err()
}

func ckptRequests(w *ckpt.Writer, reqs []Request) error {
	w.U64(uint64(len(reqs)))
	for _, req := range reqs {
		if err := ckptRequest(w, req); err != nil {
			return err
		}
	}
	return nil
}

func restoreRequests(r *ckpt.Reader, eng *evsim.Engine) ([]Request, error) {
	n := r.U64()
	if err := r.Err(); err != nil {
		return nil, err
	}
	reqs := make([]Request, 0, n)
	for i := uint64(0); i < n; i++ {
		req, err := restoreRequest(r, eng)
		if err != nil {
			return nil, err
		}
		reqs = append(reqs, req)
	}
	return reqs, nil
}

func (b *L2Bank) checkpoint(w *ckpt.Writer) error {
	if err := b.tags.Checkpoint(w); err != nil {
		return fmt.Errorf("uncore: bank %d: %w", b.id, err)
	}

	addrs := make([]uint64, 0, len(b.mshr))
	for a := range b.mshr { //coyote:mapiter-ok keys are sorted before serialization; the encoding is order-canonical

		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	w.U64(uint64(len(addrs)))
	for _, a := range addrs {
		e := b.mshr[a]
		w.U64(a)
		w.U8(uint8(e.state))
		w.U64(uint64(len(e.waiters)))
		for _, d := range e.waiters {
			if err := ckptDone(w, d); err != nil {
				return fmt.Errorf("uncore: bank %d: MSHR %#x: %w", b.id, a, err)
			}
		}
	}

	if err := ckptRequests(w, b.retryQ[b.retryHead:]); err != nil {
		return fmt.Errorf("uncore: bank %d: retry queue: %w", b.id, err)
	}
	if err := ckptRequests(w, b.localIn.Pending()); err != nil {
		return fmt.Errorf("uncore: bank %d: local port: %w", b.id, err)
	}
	w.U64(b.localIn.Sent())
	if err := ckptRequests(w, b.remoteIn.Pending()); err != nil {
		return fmt.Errorf("uncore: bank %d: remote port: %w", b.id, err)
	}
	w.U64(b.remoteIn.Sent())

	w.U64(b.reads)
	w.U64(b.writes)
	w.U64(b.missesIssued)
	w.U64(b.mshrMerges)
	w.U64(b.mshrConflicts)
	w.U64(b.prefetches)
	w.Int(b.peakMSHR)
	return nil
}

func (b *L2Bank) restore(r *ckpt.Reader) error {
	if err := b.tags.Restore(r); err != nil {
		return fmt.Errorf("uncore: bank %d: %w", b.id, err)
	}
	eng := b.u.eng
	now := eng.Now()

	nMSHR := r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	if nMSHR > uint64(b.u.cfg.L2MSHRs) {
		return fmt.Errorf("uncore: bank %d: checkpoint has %d MSHR entries, capacity is %d", b.id, nMSHR, b.u.cfg.L2MSHRs)
	}
	var lastAddr uint64
	for i := uint64(0); i < nMSHR; i++ {
		addr := r.U64()
		state := mshrState(r.U8())
		nW := r.U64()
		if err := r.Err(); err != nil {
			return err
		}
		if state != mshrDemand && state != mshrPrefetch {
			return fmt.Errorf("uncore: bank %d: checkpoint MSHR %#x has invalid state %d", b.id, addr, state)
		}
		if i > 0 && addr <= lastAddr {
			return fmt.Errorf("uncore: bank %d: checkpoint MSHR entries out of order at %#x", b.id, addr)
		}
		lastAddr = addr
		var waiters []Done
		for j := uint64(0); j < nW; j++ {
			d, err := restoreDone(r, eng)
			if err != nil {
				return err
			}
			waiters = append(waiters, d)
		}
		b.san.Insert(now, addr)
		b.mshr[addr] = mshrEntry{state: state, waiters: waiters}
	}
	if int(nMSHR) > b.peakMSHR {
		b.peakMSHR = int(nMSHR)
	}

	retryQ, err := restoreRequests(r, eng)
	if err != nil {
		return fmt.Errorf("uncore: bank %d: retry queue: %w", b.id, err)
	}
	b.retryQ = retryQ
	b.retryHead = 0

	localPend, err := restoreRequests(r, eng)
	if err != nil {
		return fmt.Errorf("uncore: bank %d: local port: %w", b.id, err)
	}
	localSent := r.U64()
	remotePend, err := restoreRequests(r, eng)
	if err != nil {
		return fmt.Errorf("uncore: bank %d: remote port: %w", b.id, err)
	}
	remoteSent := r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	b.localIn.RestorePending(localPend, localSent)
	b.remoteIn.RestorePending(remotePend, remoteSent)

	b.reads = r.U64()
	b.writes = r.U64()
	b.missesIssued = r.U64()
	b.mshrMerges = r.U64()
	b.mshrConflicts = r.U64()
	b.prefetches = r.U64()
	peak := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	b.peakMSHR = peak
	return nil
}

func (l *LLCSlice) checkpoint(w *ckpt.Writer) error {
	if err := l.tags.Checkpoint(w); err != nil {
		return fmt.Errorf("uncore: llc %d: %w", l.id, err)
	}
	addrs := make([]uint64, 0, len(l.mshr))
	for a := range l.mshr { //coyote:mapiter-ok keys are sorted before serialization; the encoding is order-canonical

		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	w.U64(uint64(len(addrs)))
	for _, a := range addrs {
		ws := l.mshr[a]
		w.U64(a)
		w.U64(uint64(len(ws)))
		for _, lw := range ws {
			if err := ckptDone(w, lw.done); err != nil {
				return fmt.Errorf("uncore: llc %d: MSHR %#x: %w", l.id, a, err)
			}
			w.U64(lw.extra)
		}
	}
	w.U64(l.reads)
	w.U64(l.writes)
	w.U64(l.mshrMerges)
	return nil
}

func (l *LLCSlice) restore(r *ckpt.Reader) error {
	if err := l.tags.Restore(r); err != nil {
		return fmt.Errorf("uncore: llc %d: %w", l.id, err)
	}
	eng := l.u.eng
	now := eng.Now()
	n := r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	var lastAddr uint64
	for i := uint64(0); i < n; i++ {
		addr := r.U64()
		nW := r.U64()
		if err := r.Err(); err != nil {
			return err
		}
		if i > 0 && addr <= lastAddr {
			return fmt.Errorf("uncore: llc %d: checkpoint MSHR entries out of order at %#x", l.id, addr)
		}
		lastAddr = addr
		var ws []llcWaiter
		for j := uint64(0); j < nW; j++ {
			d, err := restoreDone(r, eng)
			if err != nil {
				return err
			}
			extra := r.U64()
			ws = append(ws, llcWaiter{done: d, extra: extra})
		}
		l.san.Insert(now, addr)
		l.mshr[addr] = ws
	}
	l.reads = r.U64()
	l.writes = r.U64()
	l.mshrMerges = r.U64()
	return r.Err()
}

func (m *MemCtrl) checkpoint(w *ckpt.Writer) {
	w.U64(m.nextFree)
	w.U64(uint64(len(m.openRow)))
	for i := range m.openRow {
		w.U64(m.openRow[i])
		w.Bool(m.rowValid[i])
	}
	w.U64(m.reads)
	w.U64(m.writes)
	w.U64(m.stallCycle)
	w.U64(m.rowHits)
	w.U64(m.rowMisses)
}

func (m *MemCtrl) restore(r *ckpt.Reader) error {
	nextFree := r.U64()
	n := r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	if n != uint64(len(m.openRow)) {
		return fmt.Errorf("uncore: mc %d: checkpoint has %d DRAM banks, this controller has %d", m.id, n, len(m.openRow))
	}
	m.nextFree = nextFree
	for i := range m.openRow {
		m.openRow[i] = r.U64()
		m.rowValid[i] = r.Bool()
	}
	m.reads = r.U64()
	m.writes = r.U64()
	m.stallCycle = r.U64()
	m.rowHits = r.U64()
	m.rowMisses = r.U64()
	return r.Err()
}

func (m *MCPU) checkpoint(w *ckpt.Writer) error {
	// The whole slot table is serialized — including inactive slots and
	// the exact free-list order — because calendar events address slots by
	// id and future slot recycling must replay identically.
	w.U64(uint64(len(m.txns)))
	for i := range m.txns {
		t := &m.txns[i]
		w.Bool(t.active)
		w.Bool(t.write)
		w.Int(t.remaining)
		if err := ckptDone(w, t.done); err != nil {
			return fmt.Errorf("uncore: mcpu slot %d: %w", i, err)
		}
		w.U64(uint64(len(t.lines)))
		for _, line := range t.lines {
			w.U64(line)
		}
	}
	w.U64(uint64(len(m.free)))
	for _, id := range m.free {
		w.U32(id)
	}
	w.U64(m.gathers)
	w.U64(m.scatters)
	w.U64(m.elements)
	w.U64(m.lines)
	return nil
}

func (m *MCPU) restore(r *ckpt.Reader) error {
	eng := m.u.eng
	n := r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	m.txns = make([]gatherTxn, n)
	for i := range m.txns {
		t := &m.txns[i]
		t.active = r.Bool()
		t.write = r.Bool()
		t.remaining = r.Int()
		d, err := restoreDone(r, eng)
		if err != nil {
			return err
		}
		t.done = d
		nl := r.U64()
		if err := r.Err(); err != nil {
			return err
		}
		t.lines = make([]uint64, nl)
		for j := range t.lines {
			t.lines[j] = r.U64()
		}
	}
	nf := r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	m.free = make([]uint32, nf)
	for i := range m.free {
		id := r.U32()
		if uint64(id) >= n {
			return fmt.Errorf("uncore: mcpu free list names slot %d of %d", id, n)
		}
		m.free[i] = id
	}
	m.gathers = r.U64()
	m.scatters = r.U64()
	m.elements = r.U64()
	m.lines = r.U64()
	return r.Err()
}
