package uncore

import (
	"testing"

	"github.com/coyote-sim/coyote/internal/cache"
	"github.com/coyote-sim/coyote/internal/evsim"
)

func testConfig() Config {
	cfg := DefaultConfig(2)
	cfg.L2 = cache.Config{SizeBytes: 8 << 10, Ways: 2, LineBytes: 64, WriteBack: true}
	return cfg
}

func newTestUncore(t *testing.T, cfg Config) (*Uncore, *evsim.Engine) {
	t.Helper()
	eng := evsim.NewEngine()
	u, err := New(cfg, eng)
	if err != nil {
		t.Fatal(err)
	}
	return u, eng
}

// runUntil drains the engine and returns the completion time of a single
// tracked request.
func roundTrip(t *testing.T, u *Uncore, eng *evsim.Engine, tile int, addr uint64) evsim.Cycle {
	t.Helper()
	var doneAt evsim.Cycle
	fired := false
	u.Submit(Request{Tile: tile, Addr: addr, Done: FuncDone(func() {
		doneAt = eng.Now()
		fired = true
	})})
	eng.Drain()
	if !fired {
		t.Fatal("request never completed")
	}
	return doneAt
}

func TestConfigValidation(t *testing.T) {
	good := DefaultConfig(4)
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultConfig(4)
	bad.BanksPerTile = 3
	if err := bad.Validate(); err == nil {
		t.Error("non-power-of-two banks accepted")
	}
	bad = DefaultConfig(4)
	bad.MemCtrls = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero MCs accepted")
	}
	bad = DefaultConfig(4)
	bad.L2MSHRs = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero MSHRs accepted")
	}
}

func TestMissThenHitLatency(t *testing.T) {
	cfg := testConfig()
	u, eng := newTestUncore(t, cfg)
	base := uint64(0x10000)

	// Cold miss: full path core→bank→MC→bank→core.
	missTime := roundTrip(t, u, eng, 0, base)
	// The same line again: L2 hit, much quicker.
	start := eng.Now()
	hitTime := roundTrip(t, u, eng, 0, base) - start

	if hitTime >= missTime {
		t.Errorf("hit (%d) should be faster than cold miss (%d)", hitTime, missTime)
	}
	// Hit latency bound: two traversals + lookup.
	maxHit := cfg.L2HitLatency + 2*cfg.NoCLatency + 2*cfg.LocalLatency
	if hitTime > maxHit {
		t.Errorf("hit latency %d exceeds bound %d", hitTime, maxHit)
	}
	if missTime < cfg.MemLatency {
		t.Errorf("miss latency %d below DRAM latency %d", missTime, cfg.MemLatency)
	}
}

func TestSetInterleaveSpreadsLines(t *testing.T) {
	cfg := testConfig()
	cfg.Mapping = SetInterleave
	u, _ := newTestUncore(t, cfg)
	lb := uint64(cfg.L2.LineBytes)
	seen := map[int]bool{}
	for i := uint64(0); i < uint64(len(u.banks)); i++ {
		seen[u.bankFor(0, i*lb).ID()] = true
	}
	if len(seen) != len(u.banks) {
		t.Errorf("consecutive lines hit %d banks, want %d", len(seen), len(u.banks))
	}
}

func TestPageToBankKeepsPagesTogether(t *testing.T) {
	cfg := testConfig()
	cfg.Mapping = PageToBank
	u, _ := newTestUncore(t, cfg)
	page := uint64(0x42000)
	first := u.bankFor(0, page).ID()
	for off := uint64(0); off < 4096; off += 64 {
		if got := u.bankFor(0, page+off).ID(); got != first {
			t.Fatalf("line %#x mapped to bank %d, want %d", page+off, got, first)
		}
	}
	// The next page should (eventually) map elsewhere.
	other := false
	for p := uint64(1); p < 8; p++ {
		if u.bankFor(0, page+p*4096).ID() != first {
			other = true
		}
	}
	if !other {
		t.Error("all pages mapped to one bank")
	}
}

func TestPrivateL2RestrictsToTileBanks(t *testing.T) {
	cfg := testConfig()
	cfg.L2Shared = false
	u, _ := newTestUncore(t, cfg)
	for tile := 0; tile < cfg.Tiles; tile++ {
		for i := uint64(0); i < 64; i++ {
			b := u.bankFor(tile, i*64)
			if b.Tile() != tile {
				t.Fatalf("tile %d request mapped to bank of tile %d", tile, b.Tile())
			}
		}
	}
}

func TestSharedVsPrivateLatency(t *testing.T) {
	// In shared mode a tile-0 request can land on a tile-1 bank (remote
	// hop); in private mode it never does.
	cfgShared := testConfig()
	uShared, engShared := newTestUncore(t, cfgShared)
	cfgPriv := testConfig()
	cfgPriv.L2Shared = false
	uPriv, engPriv := newTestUncore(t, cfgPriv)

	// Find a line that lands remote under shared mapping.
	lb := uint64(cfgShared.L2.LineBytes)
	var remoteLine uint64
	for i := uint64(0); ; i++ {
		if uShared.bankFor(0, i*lb).Tile() != 0 {
			remoteLine = i * lb
			break
		}
	}
	// Warm both, then compare hit latencies.
	roundTrip(t, uShared, engShared, 0, remoteLine)
	roundTrip(t, uPriv, engPriv, 0, remoteLine)
	s0 := engShared.Now()
	sharedHit := roundTrip(t, uShared, engShared, 0, remoteLine) - s0
	p0 := engPriv.Now()
	privHit := roundTrip(t, uPriv, engPriv, 0, remoteLine) - p0
	if sharedHit <= privHit {
		t.Errorf("remote shared hit (%d) should be slower than private hit (%d)",
			sharedHit, privHit)
	}
}

func TestMSHRMergesSameLine(t *testing.T) {
	cfg := testConfig()
	u, eng := newTestUncore(t, cfg)
	done := 0
	for i := 0; i < 4; i++ {
		u.Submit(Request{Tile: 0, Addr: 0x1000, Done: FuncDone(func() { done++ })})
	}
	eng.Drain()
	if done != 4 {
		t.Fatalf("completions = %d, want 4", done)
	}
	var merges, issued uint64
	for _, b := range u.Banks() {
		merges += b.mshrMerges
		issued += b.missesIssued
	}
	if issued != 1 {
		t.Errorf("misses issued = %d, want 1 (merged)", issued)
	}
	if merges != 3 {
		t.Errorf("merges = %d, want 3", merges)
	}
	var mcReads uint64
	for _, mc := range u.MemCtrls() {
		mcReads += mc.Reads()
	}
	if mcReads != 1 {
		t.Errorf("MC reads = %d, want 1", mcReads)
	}
}

func TestMSHRConflictBackpressure(t *testing.T) {
	cfg := testConfig()
	cfg.L2MSHRs = 2
	cfg.Tiles = 1
	cfg.BanksPerTile = 1
	cfg.MemCtrls = 1
	u, eng := newTestUncore(t, cfg)
	done := 0
	// 8 distinct lines → 8 misses into a 2-entry MSHR.
	for i := uint64(0); i < 8; i++ {
		u.Submit(Request{Tile: 0, Addr: i * 64, Done: FuncDone(func() { done++ })})
	}
	eng.Drain()
	if done != 8 {
		t.Fatalf("completions = %d, want 8", done)
	}
	if u.Banks()[0].mshrConflicts == 0 {
		t.Error("expected MSHR conflicts under pressure")
	}
}

func TestWritebackReachesMemory(t *testing.T) {
	cfg := testConfig()
	u, eng := newTestUncore(t, cfg)
	u.Submit(Request{Tile: 0, Addr: 0x2000, Write: true})
	eng.Drain()
	var writes, reads uint64
	for _, b := range u.Banks() {
		writes += b.writes
	}
	for _, mc := range u.MemCtrls() {
		reads += mc.Reads()
	}
	if writes != 1 {
		t.Errorf("bank writes = %d", writes)
	}
	// Write-allocate: the line is fetched from memory once.
	if reads != 1 {
		t.Errorf("MC reads = %d, want 1 (write-allocate fetch)", reads)
	}
}

func TestMemBandwidthSerialisesBursts(t *testing.T) {
	cfg := testConfig()
	cfg.Tiles = 1
	cfg.BanksPerTile = 1
	cfg.MemCtrls = 1
	cfg.MemBytesPerCyc = 8 // 8 cycles occupancy per 64B line
	cfg.L2MSHRs = 64
	u, eng := newTestUncore(t, cfg)
	n := 16
	var last evsim.Cycle
	doneCount := 0
	for i := 0; i < n; i++ {
		addr := uint64(i) * 64
		u.Submit(Request{Tile: 0, Addr: addr, Done: FuncDone(func() {
			doneCount++
			last = eng.Now()
		})})
	}
	eng.Drain()
	if doneCount != n {
		t.Fatalf("done = %d", doneCount)
	}
	// With 8 cycles per line, 16 lines need ≥ 128 cycles of channel time.
	if last < 128 {
		t.Errorf("burst finished at %d, bandwidth not enforced", last)
	}
	if u.MemCtrls()[0].stallCycle == 0 {
		t.Error("expected queueing at the memory controller")
	}
}

func TestNoCLatencyScalesRoundTrip(t *testing.T) {
	slowCfg := testConfig()
	slowCfg.NoCLatency = 64
	fast, engF := newTestUncore(t, testConfig())
	slow, engS := newTestUncore(t, slowCfg)
	tf := roundTrip(t, fast, engF, 0, 0x3000)
	ts := roundTrip(t, slow, engS, 0, 0x3000)
	if ts <= tf {
		t.Errorf("slow NoC round trip (%d) should exceed fast (%d)", ts, tf)
	}
}

func TestSnapshotHasAllUnits(t *testing.T) {
	cfg := testConfig()
	u, eng := newTestUncore(t, cfg)
	roundTrip(t, u, eng, 0, 0x1000)
	snap := u.Snapshot()
	wantUnits := cfg.Tiles*cfg.BanksPerTile + cfg.MemCtrls + 2 // + noc + mcpu
	units := map[string]bool{}
	for _, k := range evsim.SortedKeys(snap) {
		for i := 0; i < len(k); i++ {
			if k[i] == '.' {
				units[k[:i]] = true
				break
			}
		}
	}
	if len(units) != wantUnits {
		t.Errorf("snapshot covers %d units, want %d: %v", len(units), wantUnits, units)
	}
}

func TestParseMapping(t *testing.T) {
	if p, err := ParseMapping("page-to-bank"); err != nil || p != PageToBank {
		t.Errorf("ParseMapping failed: %v %v", p, err)
	}
	if p, err := ParseMapping(""); err != nil || p != SetInterleave {
		t.Errorf("default mapping: %v %v", p, err)
	}
	if _, err := ParseMapping("bogus"); err == nil {
		t.Error("bogus mapping accepted")
	}
	if SetInterleave.String() != "set-interleave" || PageToBank.String() != "page-to-bank" {
		t.Error("mapping names wrong")
	}
}
