package uncore

import (
	"fmt"

	"github.com/coyote-sim/coyote/internal/cache"
	"github.com/coyote-sim/coyote/internal/evsim"
	"github.com/coyote-sim/coyote/internal/san"
)

// mshrState classifies an outstanding miss. A prefetch entry is promoted
// to demand the moment a real request merges into it — after that the
// fill must release waiters like any demand miss.
type mshrState uint8

const (
	mshrDemand   mshrState = iota // a core (or the LLC path) is waiting on the line
	mshrPrefetch                  // speculative next-line fetch; nobody waits
)

// mshrEntry is one in-flight miss: its class and the completions to
// release when the fill arrives.
type mshrEntry struct {
	state   mshrState
	waiters []Done
}

// L2Bank is one bank of the L2 cache: a tag array with MSHRs. Misses are
// merged per line; when the MSHR table is full the request retries next
// cycle (counted as a conflict, the back-pressure the paper's
// "maximum number of in-flight misses" parameter controls).
//
// The steady-state miss path is allocation-free: requests arrive by value
// through per-bank inbound ports, each outstanding miss is tracked by a
// pooled missTxn whose stage callbacks are pre-bound once, waiter lists
// are recycled slices of Done values, and retries/writebacks ride the
// engine's arg-carrying events instead of fresh closures.
type L2Bank struct {
	id   int
	tile int
	u    *Uncore
	tags *cache.Cache

	// Inbound ports from the cores: one per NoC hop class, since a port's
	// latency is fixed. Submit picks the right one.
	localIn  *evsim.Port[Request]
	remoteIn *evsim.Port[Request]

	mshr map[uint64]mshrEntry // line → in-flight miss state
	san  san.MSHR

	// Free lists (plain slices — the simulation is single-threaded).
	txnPool    []*missTxn
	waiterPool [][]Done

	// Retry FIFO for MSHR structural conflicts: requests park here and a
	// pre-bound retryFn event pops one per scheduled retry. FIFO order
	// matches the old closure-per-retry behaviour exactly.
	retryQ    []Request
	retryHead int
	retryFn   func(uint64)

	wbFn func(uint64) // pre-bound writeback issue; arg is the line address

	// statistics
	reads         uint64
	writes        uint64
	missesIssued  uint64
	mshrMerges    uint64
	mshrConflicts uint64
	prefetches    uint64
	peakMSHR      int
}

func newL2Bank(id, tile int, u *Uncore) (*L2Bank, error) {
	tags, err := cache.New(u.cfg.L2)
	if err != nil {
		return nil, fmt.Errorf("uncore: bank %d: %w", id, err)
	}
	b := &L2Bank{
		id:   id,
		tile: tile,
		u:    u,
		tags: tags,
		mshr: make(map[uint64]mshrEntry),
	}
	b.san.Init(fmt.Sprintf("l2bank%d.mshr", id), u.cfg.L2MSHRs)
	tags.SetSanName(fmt.Sprintf("l2bank%d.tags", id))
	b.localIn = evsim.NewPort(u.eng, u.cfg.LocalLatency, b.handle)
	b.remoteIn = evsim.NewPort(u.eng, u.cfg.NoCLatency, b.handle)
	b.retryFn = func(uint64) {
		req := b.retryQ[b.retryHead]
		b.retryQ[b.retryHead] = Request{}
		b.retryHead++
		if b.retryHead == len(b.retryQ) {
			b.retryQ = b.retryQ[:0]
			b.retryHead = 0
		}
		b.handle(req)
	}
	b.wbFn = func(addr uint64) { b.u.memSide(addr, true, 0, Done{}) }
	return b, nil
}

// missTxn tracks one outstanding miss (demand or prefetch) from issue to
// fill. Its callbacks are bound once at construction; the object cycles
// through the bank's pool, so the steady state allocates nothing.
type missTxn struct {
	b      *L2Bank
	addr   uint64
	remote bool // response returns to a remote tile
	demand bool // demand miss: the response hop to memory is counted

	issueFn  func() // stage 1: leave the bank toward the memory side
	fillDone Done   // stage 2: the memory side completed; fill the line
}

func (b *L2Bank) getTxn(addr uint64, remote, demand bool) *missTxn {
	var t *missTxn
	if n := len(b.txnPool); n > 0 {
		t = b.txnPool[n-1]
		b.txnPool = b.txnPool[:n-1]
	} else {
		t = &missTxn{b: b} //coyote:alloc-ok pool refill: one transaction per pool high-water mark, then recycled forever
		t.issueFn = t.issue //coyote:alloc-ok binds the stage callback once per pooled transaction lifetime
		t.fillDone = Done{F: t.fill} //coyote:alloc-ok binds the fill callback once per pooled transaction lifetime
	}
	t.addr, t.remote, t.demand = addr, remote, demand
	return t
}

// issue runs L2MissLatency + one NoC hop after the miss was detected:
// the transaction leaves toward the LLC/memory controller, carrying the
// response hop latency so the reply lands back at the bank.
//
//coyote:allocfree
func (t *missTxn) issue() {
	var back evsim.Cycle
	if t.demand {
		back = t.b.u.noc.delay(true)
	}
	t.b.u.memSide(t.addr, false, back, t.fillDone)
}

// fill completes the memory fetch: install the line, release waiters,
// recycle the transaction.
//
//coyote:allocfree
func (t *missTxn) fill(uint64) {
	b := t.b
	b.fill(t.addr, t.remote)
	b.txnPool = append(b.txnPool, t)
}

func (b *L2Bank) getWaiters() []Done {
	if n := len(b.waiterPool); n > 0 {
		w := b.waiterPool[n-1]
		b.waiterPool = b.waiterPool[:n-1]
		return w
	}
	return make([]Done, 0, 4) //coyote:alloc-ok pool refill: grows the waiter-list pool to its high-water mark once
}

// ID returns the global bank index.
func (b *L2Bank) ID() int { return b.id }

// Tile returns the tile this bank belongs to.
func (b *L2Bank) Tile() int { return b.tile }

// CacheStats exposes the tag-array statistics.
func (b *L2Bank) CacheStats() cache.Stats { return b.tags.Stats }

// Accesses returns the total number of lookups handled.
func (b *L2Bank) Accesses() uint64 { return b.reads + b.writes }

// handle processes a request that has arrived at the bank.
//
//coyote:allocfree
func (b *L2Bank) handle(req Request) {
	if req.Write {
		b.writes++
	} else {
		b.reads++
	}

	// A line already being fetched: merge reads into the MSHR; writes to
	// an in-flight line simply ride along (the fill will leave the line
	// present; we conservatively mark it dirty by re-accessing on fill).
	if e, inflight := b.mshr[req.Addr]; inflight {
		b.mshrMerges++
		b.san.Merge(b.u.eng.Now(), req.Addr)
		if req.Done.F != nil {
			if e.waiters == nil {
				e.waiters = b.getWaiters()
			}
			e.waiters = append(e.waiters, req.Done)
			e.state = mshrDemand // a waiter attached: promote prefetch entries
			b.mshr[req.Addr] = e
		}
		return
	}

	res := b.tags.Access(req.Addr, req.Write)
	if res.HasWriteback {
		b.writebackToMem(res.Writeback)
	}
	if res.Hit {
		if req.Done.F != nil {
			// Lookup latency plus the return traversal, folded into one
			// scheduled event.
			delay := b.u.cfg.L2HitLatency + b.u.noc.delay(b.tile != req.Tile)
			b.u.eng.ScheduleArg(delay, req.Done.F, req.Done.Arg)
		}
		return
	}

	// Miss. The Access above already allocated the tag (fill-on-miss
	// model); the MSHR tracks the outstanding memory fetch.
	if len(b.mshr) >= b.u.cfg.L2MSHRs {
		// Structural hazard: undo nothing (tags are timing-only), retry
		// the transaction next cycle.
		b.mshrConflicts++
		b.tags.Invalidate(req.Addr) // do not claim the line before the retry succeeds
		b.retryQ = append(b.retryQ, req)
		b.u.eng.ScheduleArg(1, b.retryFn, 0)
		return
	}
	var waiters []Done
	if req.Done.F != nil {
		waiters = b.getWaiters()
		waiters = append(waiters, req.Done)
	}
	b.san.Insert(b.u.eng.Now(), req.Addr)
	b.mshr[req.Addr] = mshrEntry{state: mshrDemand, waiters: waiters}
	if n := len(b.mshr); n > b.peakMSHR {
		b.peakMSHR = n
	}
	b.missesIssued++
	// bank → (miss issue + NoC) → memory side; the response flows back
	// over the NoC to the bank.
	toMem := b.u.cfg.L2MissLatency + b.u.noc.delay(true)
	b.u.eng.Schedule(toMem, b.getTxn(req.Addr, b.tile != req.Tile, true).issueFn)

	// Next-line prefetch (paper §III-A future work: "prefetching,
	// streaming"): fetch the following PrefetchDepth lines into this bank
	// if they are absent, idle MSHR capacity permitting.
	addr := req.Addr
	lineBytes := uint64(b.u.cfg.L2.LineBytes)
	// Prefetches may use at most half the MSHRs, so demand misses are
	// never starved into retry storms by speculative traffic.
	prefetchBudget := b.u.cfg.L2MSHRs / 2
	for d := 1; d <= b.u.cfg.PrefetchDepth; d++ {
		pa := addr + uint64(d)*lineBytes
		if b.u.bankFor(req.Tile, pa) != b {
			continue // the neighbouring line belongs to another bank
		}
		if b.tags.Probe(pa) {
			continue
		}
		if _, inflight := b.mshr[pa]; inflight {
			continue
		}
		if len(b.mshr) >= prefetchBudget {
			break
		}
		b.san.Insert(b.u.eng.Now(), pa)
		b.mshr[pa] = mshrEntry{state: mshrPrefetch}
		b.prefetches++
		b.u.eng.Schedule(toMem, b.getTxn(pa, false, false).issueFn)
	}
}

// fill completes an outstanding miss: release all merged waiters after
// their return traversal. Prefetch fills (no waiters) just install the
// line. Waiters release as one arg-carrying event each, scheduled
// back-to-back at the same cycle with consecutive seq numbers — the same
// observable order as the old one-closure-over-all-waiters form, without
// the closure.
func (b *L2Bank) fill(addr uint64, remoteReq bool) {
	e := b.mshr[addr]
	b.san.Release(b.u.eng.Now(), addr)
	delete(b.mshr, addr)
	if !b.tags.Probe(addr) {
		if res := b.tags.Fill(addr); res.HasWriteback {
			b.writebackToMem(res.Writeback)
		}
	}
	waiters := e.waiters
	switch e.state {
	case mshrPrefetch:
		// Merge promotes a prefetch entry to demand the moment a waiter
		// attaches, so a prefetch fill can never owe anyone a response.
		san.Check(len(waiters) == 0, b.u.eng.Now(), "l2bank.mshr",
			"prefetch fill arrived with merged waiters (promotion to demand was lost)",
			addr, uint64(len(waiters)))
	case mshrDemand:
		if len(waiters) > 0 {
			delay := b.u.noc.delay(remoteReq)
			b.u.eng.ScheduleArg(delay, waiters[0].F, waiters[0].Arg)
			for i := 1; i < len(waiters); i++ {
				b.u.noc.delay(remoteReq) // one response message per merged waiter
				b.u.eng.ScheduleArg(delay, waiters[i].F, waiters[i].Arg)
			}
		}
	}
	if waiters != nil {
		b.waiterPool = append(b.waiterPool, waiters[:0])
	}
}

// writebackToMem sends an evicted dirty line toward memory.
func (b *L2Bank) writebackToMem(addr uint64) {
	b.u.eng.ScheduleArg(b.u.noc.delay(true), b.wbFn, addr)
}

// Name implements evsim.Unit.
func (b *L2Bank) Name() string { return fmt.Sprintf("l2bank%d", b.id) }

// Counters implements evsim.Unit.
func (b *L2Bank) Counters() map[string]uint64 {
	s := b.tags.Stats
	return map[string]uint64{
		"reads":          b.reads,
		"writes":         b.writes,
		"hits":           s.Hits,
		"misses":         s.Misses,
		"writebacks":     s.Writebacks,
		"misses_issued":  b.missesIssued,
		"mshr_merges":    b.mshrMerges,
		"mshr_conflicts": b.mshrConflicts,
		"prefetches":     b.prefetches,
		"peak_mshr":      uint64(b.peakMSHR),
	}
}
