package uncore

import (
	"fmt"

	"github.com/coyote-sim/coyote/internal/cache"
)

// L2Bank is one bank of the L2 cache: a tag array with MSHRs. Misses are
// merged per line; when the MSHR table is full the request retries next
// cycle (counted as a conflict, the back-pressure the paper's
// "maximum number of in-flight misses" parameter controls).
type L2Bank struct {
	id   int
	tile int
	u    *Uncore
	tags *cache.Cache

	mshr map[uint64][]func() // line → waiting completions

	// statistics
	reads         uint64
	writes        uint64
	missesIssued  uint64
	mshrMerges    uint64
	mshrConflicts uint64
	prefetches    uint64
	peakMSHR      int
}

func newL2Bank(id, tile int, u *Uncore) (*L2Bank, error) {
	tags, err := cache.New(u.cfg.L2)
	if err != nil {
		return nil, fmt.Errorf("uncore: bank %d: %w", id, err)
	}
	return &L2Bank{
		id:   id,
		tile: tile,
		u:    u,
		tags: tags,
		mshr: make(map[uint64][]func()),
	}, nil
}

// ID returns the global bank index.
func (b *L2Bank) ID() int { return b.id }

// Tile returns the tile this bank belongs to.
func (b *L2Bank) Tile() int { return b.tile }

// CacheStats exposes the tag-array statistics.
func (b *L2Bank) CacheStats() cache.Stats { return b.tags.Stats }

// Accesses returns the total number of lookups handled.
func (b *L2Bank) Accesses() uint64 { return b.reads + b.writes }

// handle processes a request that has arrived at the bank.
func (b *L2Bank) handle(req Request) {
	if req.Write {
		b.writes++
	} else {
		b.reads++
	}

	// A line already being fetched: merge reads into the MSHR; writes to
	// an in-flight line simply ride along (the fill will leave the line
	// present; we conservatively mark it dirty by re-accessing on fill).
	if waiters, inflight := b.mshr[req.Addr]; inflight {
		b.mshrMerges++
		if req.Done != nil {
			b.mshr[req.Addr] = append(waiters, req.Done)
		}
		return
	}

	res := b.tags.Access(req.Addr, req.Write)
	if res.HasWriteback {
		b.writebackToMem(res.Writeback)
	}
	if res.Hit {
		if req.Done != nil {
			// Lookup latency plus the return traversal, folded into one
			// scheduled event.
			delay := b.u.cfg.L2HitLatency + b.u.noc.delay(b.tile != req.Tile)
			b.u.eng.Schedule(delay, req.Done)
		}
		return
	}

	// Miss. The Access above already allocated the tag (fill-on-miss
	// model); the MSHR tracks the outstanding memory fetch.
	if len(b.mshr) >= b.u.cfg.L2MSHRs {
		// Structural hazard: undo nothing (tags are timing-only), retry
		// the transaction next cycle.
		b.mshrConflicts++
		b.tags.Invalidate(req.Addr) // do not claim the line before the retry succeeds
		b.u.eng.Schedule(1, func() { b.handle(req) })
		return
	}
	var waiters []func()
	if req.Done != nil {
		waiters = append(waiters, req.Done)
	}
	b.mshr[req.Addr] = waiters
	if n := len(b.mshr); n > b.peakMSHR {
		b.peakMSHR = n
	}
	b.missesIssued++
	remoteReq := b.tile != req.Tile
	addr := req.Addr
	// bank → (miss issue + NoC) → memory side; the response flows back
	// over the NoC to the bank.
	toMem := b.u.cfg.L2MissLatency + b.u.noc.delay(true)
	b.u.eng.Schedule(toMem, func() {
		backLat := b.u.noc.delay(true)
		b.u.memSide(addr, false, backLat, func() { b.fill(addr, remoteReq) })
	})

	// Next-line prefetch (paper §III-A future work: "prefetching,
	// streaming"): fetch the following PrefetchDepth lines into this bank
	// if they are absent, idle MSHR capacity permitting.
	lineBytes := uint64(b.u.cfg.L2.LineBytes)
	// Prefetches may use at most half the MSHRs, so demand misses are
	// never starved into retry storms by speculative traffic.
	prefetchBudget := b.u.cfg.L2MSHRs / 2
	for d := 1; d <= b.u.cfg.PrefetchDepth; d++ {
		pa := addr + uint64(d)*lineBytes
		if b.u.bankFor(req.Tile, pa) != b {
			continue // the neighbouring line belongs to another bank
		}
		if b.tags.Probe(pa) {
			continue
		}
		if _, inflight := b.mshr[pa]; inflight {
			continue
		}
		if len(b.mshr) >= prefetchBudget {
			break
		}
		b.mshr[pa] = nil
		b.prefetches++
		b.u.eng.Schedule(toMem, func() {
			b.u.memSide(pa, false, 0, func() { b.fill(pa, false) })
		})
	}
}

// fill completes an outstanding miss: release all merged waiters after
// their return traversal. Prefetch fills (no waiters) just install the
// line.
func (b *L2Bank) fill(addr uint64, remoteReq bool) {
	waiters := b.mshr[addr]
	delete(b.mshr, addr)
	if !b.tags.Probe(addr) {
		if res := b.tags.Fill(addr); res.HasWriteback {
			b.writebackToMem(res.Writeback)
		}
	}
	if len(waiters) == 0 {
		return
	}
	delay := b.u.noc.delay(remoteReq)
	for i := 1; i < len(waiters); i++ {
		b.u.noc.delay(remoteReq) // one response message per merged waiter
	}
	ws := waiters
	b.u.eng.Schedule(delay, func() {
		for _, done := range ws {
			done()
		}
	})
}

// writebackToMem sends an evicted dirty line toward memory.
func (b *L2Bank) writebackToMem(addr uint64) {
	delay := b.u.noc.delay(true)
	b.u.eng.Schedule(delay, func() { b.u.memSide(addr, true, 0, nil) })
}

// Name implements evsim.Unit.
func (b *L2Bank) Name() string { return fmt.Sprintf("l2bank%d", b.id) }

// Counters implements evsim.Unit.
func (b *L2Bank) Counters() map[string]uint64 {
	s := b.tags.Stats
	return map[string]uint64{
		"reads":          b.reads,
		"writes":         b.writes,
		"hits":           s.Hits,
		"misses":         s.Misses,
		"writebacks":     s.Writebacks,
		"misses_issued":  b.missesIssued,
		"mshr_merges":    b.mshrMerges,
		"mshr_conflicts": b.mshrConflicts,
		"prefetches":     b.prefetches,
		"peak_mshr":      uint64(b.peakMSHR),
	}
}
