package uncore

import (
	"fmt"

	"github.com/coyote-sim/coyote/internal/cache"
	"github.com/coyote-sim/coyote/internal/evsim"
	"github.com/coyote-sim/coyote/internal/san"
)

// mshrState classifies an outstanding miss. A prefetch entry is promoted
// to demand the moment a real request merges into it — after that the
// fill must release waiters like any demand miss.
type mshrState uint8

const (
	mshrDemand   mshrState = iota // a core (or the LLC path) is waiting on the line
	mshrPrefetch                  // speculative next-line fetch; nobody waits
)

// mshrEntry is one in-flight miss: its class and the completions to
// release when the fill arrives.
type mshrEntry struct {
	state   mshrState
	waiters []Done
}

// L2Bank is one bank of the L2 cache: a tag array with MSHRs. Misses are
// merged per line; when the MSHR table is full the request retries next
// cycle (counted as a conflict, the back-pressure the paper's
// "maximum number of in-flight misses" parameter controls).
//
// The steady-state miss path is allocation-free AND closure-free: requests
// arrive by value through per-bank inbound ports, each outstanding miss
// rides two registered per-bank callbacks (issue, fill) whose word of
// context packs the line address with the routing flags, waiter lists are
// recycled slices of Done values, and retries/writebacks ride the engine's
// arg-carrying events. Every scheduled event therefore carries a registry
// handle, which is what lets the calendar be checkpointed.
type L2Bank struct {
	id   int
	tile int
	u    *Uncore
	tags *cache.Cache

	// Inbound ports from the cores: one per NoC hop class, since a port's
	// latency is fixed. Submit picks the right one.
	localIn  *evsim.Port[Request]
	remoteIn *evsim.Port[Request]

	mshr map[uint64]mshrEntry // line → in-flight miss state
	san  san.MSHR

	waiterPool [][]Done

	// Miss-path stage callbacks, registered once per bank. issueFn's arg
	// packs addr<<2 | remote<<1 | demand; fillFn's packs addr<<1 | remote.
	// Line addresses are line-aligned, so the shifted packing is lossless
	// for any address below 2^62.
	issueFn func(uint64)
	issueH  evsim.Handle
	fillFn  func(uint64)
	fillH   evsim.Handle

	// Retry FIFO for MSHR structural conflicts: requests park here and a
	// pre-bound retryFn event pops one per scheduled retry. FIFO order
	// matches the old closure-per-retry behaviour exactly.
	retryQ    []Request
	retryHead int
	retryFn   func(uint64)
	retryH    evsim.Handle

	wbFn func(uint64) // pre-bound writeback issue; arg is the line address
	wbH  evsim.Handle

	// statistics
	reads         uint64
	writes        uint64
	missesIssued  uint64
	mshrMerges    uint64
	mshrConflicts uint64
	prefetches    uint64
	peakMSHR      int
}

func newL2Bank(id, tile int, u *Uncore) (*L2Bank, error) {
	tags, err := cache.New(u.cfg.L2)
	if err != nil {
		return nil, fmt.Errorf("uncore: bank %d: %w", id, err)
	}
	b := &L2Bank{
		id:   id,
		tile: tile,
		u:    u,
		tags: tags,
		mshr: make(map[uint64]mshrEntry),
	}
	b.san.Init(fmt.Sprintf("l2bank%d.mshr", id), u.cfg.L2MSHRs)
	tags.SetSanName(fmt.Sprintf("l2bank%d.tags", id))
	b.localIn = evsim.NewPort(u.eng, u.cfg.LocalLatency, b.handle)
	b.remoteIn = evsim.NewPort(u.eng, u.cfg.NoCLatency, b.handle)
	b.issueFn = b.issue
	b.issueH = u.eng.RegisterFn(b.issueFn)
	b.fillFn = b.fillEvent
	b.fillH = u.eng.RegisterFn(b.fillFn)
	b.retryFn = func(uint64) {
		req := b.retryQ[b.retryHead]
		b.retryQ[b.retryHead] = Request{}
		b.retryHead++
		if b.retryHead == len(b.retryQ) {
			b.retryQ = b.retryQ[:0]
			b.retryHead = 0
		}
		b.handle(req)
	}
	b.retryH = u.eng.RegisterFn(b.retryFn)
	b.wbFn = func(addr uint64) { b.u.memSide(addr, true, 0, Done{}) }
	b.wbH = u.eng.RegisterFn(b.wbFn)
	return b, nil
}

// issue runs L2MissLatency + one NoC hop after the miss was detected:
// the transaction leaves toward the LLC/memory controller, carrying the
// response hop latency so the reply lands back at the bank. arg packs
// addr<<2 | remote<<1 | demand.
//
//coyote:allocfree
func (b *L2Bank) issue(arg uint64) {
	addr := arg >> 2
	remote := arg>>1&1 != 0
	demand := arg&1 != 0
	var back evsim.Cycle
	if demand {
		back = b.u.noc.delay(true)
	}
	fill := uint64(0)
	if remote {
		fill = 1
	}
	b.u.memSide(addr, false, back, Done{F: b.fillFn, Arg: addr<<1 | fill, H: b.fillH})
}

// fillEvent completes the memory fetch for arg = addr<<1 | remote.
//
//coyote:allocfree
func (b *L2Bank) fillEvent(arg uint64) {
	b.fill(arg>>1, arg&1 != 0)
}

func (b *L2Bank) getWaiters() []Done {
	if n := len(b.waiterPool); n > 0 {
		w := b.waiterPool[n-1]
		b.waiterPool = b.waiterPool[:n-1]
		return w
	}
	return make([]Done, 0, 4) //coyote:alloc-ok pool refill: grows the waiter-list pool to its high-water mark once
}

// ID returns the global bank index.
func (b *L2Bank) ID() int { return b.id }

// Tile returns the tile this bank belongs to.
func (b *L2Bank) Tile() int { return b.tile }

// CacheStats exposes the tag-array statistics.
func (b *L2Bank) CacheStats() cache.Stats { return b.tags.Stats }

// Accesses returns the total number of lookups handled.
func (b *L2Bank) Accesses() uint64 { return b.reads + b.writes }

// handle processes a request that has arrived at the bank.
//
//coyote:allocfree
func (b *L2Bank) handle(req Request) {
	if req.Write {
		b.writes++
	} else {
		b.reads++
	}

	// A line already being fetched: merge reads into the MSHR; writes to
	// an in-flight line simply ride along (the fill will leave the line
	// present; we conservatively mark it dirty by re-accessing on fill).
	if e, inflight := b.mshr[req.Addr]; inflight {
		b.mshrMerges++
		b.san.Merge(b.u.eng.Now(), req.Addr)
		if req.Done.F != nil {
			if e.waiters == nil {
				e.waiters = b.getWaiters()
			}
			e.waiters = append(e.waiters, req.Done)
			e.state = mshrDemand // a waiter attached: promote prefetch entries
			b.mshr[req.Addr] = e
		}
		return
	}

	res := b.tags.Access(req.Addr, req.Write)
	if res.HasWriteback {
		b.writebackToMem(res.Writeback)
	}
	if res.Hit {
		if req.Done.F != nil {
			// Lookup latency plus the return traversal, folded into one
			// scheduled event.
			delay := b.u.cfg.L2HitLatency + b.u.noc.delay(b.tile != req.Tile)
			b.u.eng.ScheduleArgH(delay, req.Done.F, req.Done.Arg, req.Done.H)
		}
		return
	}

	// Miss. The Access above already allocated the tag (fill-on-miss
	// model); the MSHR tracks the outstanding memory fetch.
	if len(b.mshr) >= b.u.cfg.L2MSHRs {
		// Structural hazard: undo nothing (tags are timing-only), retry
		// the transaction next cycle.
		b.mshrConflicts++
		b.tags.Invalidate(req.Addr) // do not claim the line before the retry succeeds
		b.retryQ = append(b.retryQ, req)
		b.u.eng.ScheduleArgH(1, b.retryFn, 0, b.retryH)
		return
	}
	var waiters []Done
	if req.Done.F != nil {
		waiters = b.getWaiters()
		waiters = append(waiters, req.Done)
	}
	b.san.Insert(b.u.eng.Now(), req.Addr)
	b.mshr[req.Addr] = mshrEntry{state: mshrDemand, waiters: waiters}
	if n := len(b.mshr); n > b.peakMSHR {
		b.peakMSHR = n
	}
	b.missesIssued++
	// bank → (miss issue + NoC) → memory side; the response flows back
	// over the NoC to the bank.
	toMem := b.u.cfg.L2MissLatency + b.u.noc.delay(true)
	issueArg := req.Addr << 2
	if b.tile != req.Tile {
		issueArg |= 2
	}
	b.u.eng.ScheduleArgH(toMem, b.issueFn, issueArg|1, b.issueH)

	// Next-line prefetch (paper §III-A future work: "prefetching,
	// streaming"): fetch the following PrefetchDepth lines into this bank
	// if they are absent, idle MSHR capacity permitting.
	addr := req.Addr
	lineBytes := uint64(b.u.cfg.L2.LineBytes)
	// Prefetches may use at most half the MSHRs, so demand misses are
	// never starved into retry storms by speculative traffic.
	prefetchBudget := b.u.cfg.L2MSHRs / 2
	for d := 1; d <= b.u.cfg.PrefetchDepth; d++ {
		pa := addr + uint64(d)*lineBytes
		if b.u.bankFor(req.Tile, pa) != b {
			continue // the neighbouring line belongs to another bank
		}
		if b.tags.Probe(pa) {
			continue
		}
		if _, inflight := b.mshr[pa]; inflight {
			continue
		}
		if len(b.mshr) >= prefetchBudget {
			break
		}
		b.san.Insert(b.u.eng.Now(), pa)
		b.mshr[pa] = mshrEntry{state: mshrPrefetch}
		b.prefetches++
		b.u.eng.ScheduleArgH(toMem, b.issueFn, pa<<2, b.issueH)
	}
}

// fill completes an outstanding miss: release all merged waiters after
// their return traversal. Prefetch fills (no waiters) just install the
// line. Waiters release as one arg-carrying event each, scheduled
// back-to-back at the same cycle with consecutive seq numbers — the same
// observable order as the old one-closure-over-all-waiters form, without
// the closure.
func (b *L2Bank) fill(addr uint64, remoteReq bool) {
	e := b.mshr[addr]
	b.san.Release(b.u.eng.Now(), addr)
	delete(b.mshr, addr)
	if !b.tags.Probe(addr) {
		if res := b.tags.Fill(addr); res.HasWriteback {
			b.writebackToMem(res.Writeback)
		}
	}
	waiters := e.waiters
	switch e.state {
	case mshrPrefetch:
		// Merge promotes a prefetch entry to demand the moment a waiter
		// attaches, so a prefetch fill can never owe anyone a response.
		san.Check(len(waiters) == 0, b.u.eng.Now(), "l2bank.mshr",
			"prefetch fill arrived with merged waiters (promotion to demand was lost)",
			addr, uint64(len(waiters)))
	case mshrDemand:
		if len(waiters) > 0 {
			delay := b.u.noc.delay(remoteReq)
			b.u.eng.ScheduleArgH(delay, waiters[0].F, waiters[0].Arg, waiters[0].H)
			for i := 1; i < len(waiters); i++ {
				b.u.noc.delay(remoteReq) // one response message per merged waiter
				b.u.eng.ScheduleArgH(delay, waiters[i].F, waiters[i].Arg, waiters[i].H)
			}
		}
	}
	if waiters != nil {
		b.waiterPool = append(b.waiterPool, waiters[:0])
	}
}

// writebackToMem sends an evicted dirty line toward memory.
func (b *L2Bank) writebackToMem(addr uint64) {
	b.u.eng.ScheduleArgH(b.u.noc.delay(true), b.wbFn, addr, b.wbH)
}

// Name implements evsim.Unit.
func (b *L2Bank) Name() string { return fmt.Sprintf("l2bank%d", b.id) }

// Counters implements evsim.Unit.
func (b *L2Bank) Counters() map[string]uint64 {
	s := b.tags.Stats
	return map[string]uint64{
		"reads":          b.reads,
		"writes":         b.writes,
		"hits":           s.Hits,
		"misses":         s.Misses,
		"writebacks":     s.Writebacks,
		"misses_issued":  b.missesIssued,
		"mshr_merges":    b.mshrMerges,
		"mshr_conflicts": b.mshrConflicts,
		"prefetches":     b.prefetches,
		"peak_mshr":      uint64(b.peakMSHR),
	}
}
