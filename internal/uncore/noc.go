package uncore

import "github.com/coyote-sim/coyote/internal/evsim"

// NoC is the idealized crossbar interconnect from the paper: every
// traversal completes after a fixed configurable latency, with no
// contention ("a highly idealized crossbar, that uses fixed, configurable
// latencies", §III-A). Same-tile hops use the shorter local latency.
type NoC struct {
	latency evsim.Cycle
	local   evsim.Cycle

	remoteMsgs uint64
	localMsgs  uint64
}

func newNoC(latency, local evsim.Cycle) *NoC {
	return &NoC{latency: latency, local: local}
}

// delay accounts one crossbar traversal and returns its latency. Units on
// a transaction's critical path fold several hops into a single scheduled
// event using accumulated delays; this keeps the message statistics exact
// without one event per hop.
func (n *NoC) delay(remote bool) evsim.Cycle {
	if remote {
		n.remoteMsgs++
		return n.latency
	}
	n.localMsgs++
	return n.local
}

// Messages returns total traversals (local + remote).
func (n *NoC) Messages() uint64 { return n.localMsgs + n.remoteMsgs }

// Name implements evsim.Unit.
func (n *NoC) Name() string { return "noc" }

// Counters implements evsim.Unit.
func (n *NoC) Counters() map[string]uint64 {
	return map[string]uint64{
		"remote_msgs": n.remoteMsgs,
		"local_msgs":  n.localMsgs,
	}
}
