package uncore

import (
	"github.com/coyote-sim/coyote/internal/evsim"
	"github.com/coyote-sim/coyote/internal/san"
)

// NoC is the idealized crossbar interconnect from the paper: every
// traversal completes after a fixed configurable latency, with no
// contention ("a highly idealized crossbar, that uses fixed, configurable
// latencies", §III-A). Same-tile hops use the shorter local latency.
type NoC struct {
	eng     *evsim.Engine
	latency evsim.Cycle
	local   evsim.Cycle
	san     san.Latch

	remoteMsgs uint64
	localMsgs  uint64
}

func newNoC(eng *evsim.Engine, latency, local evsim.Cycle) *NoC {
	n := &NoC{eng: eng, latency: latency, local: local}
	n.san.Init("noc.latency", latency, local)
	return n
}

// delay accounts one crossbar traversal and returns its latency. Units on
// a transaction's critical path fold several hops into a single scheduled
// event using accumulated delays; this keeps the message statistics exact
// without one event per hop. The paper's crossbar latencies are fixed at
// configuration time; the sanitizer latch verifies they never drift.
func (n *NoC) delay(remote bool) evsim.Cycle {
	n.san.CheckLatched(n.eng.Now(), n.latency, n.local)
	if remote {
		n.remoteMsgs++
		return n.latency
	}
	n.localMsgs++
	return n.local
}

// Messages returns total traversals (local + remote).
func (n *NoC) Messages() uint64 { return n.localMsgs + n.remoteMsgs }

// Name implements evsim.Unit.
func (n *NoC) Name() string { return "noc" }

// Counters implements evsim.Unit.
func (n *NoC) Counters() map[string]uint64 {
	return map[string]uint64{
		"remote_msgs": n.remoteMsgs,
		"local_msgs":  n.localMsgs,
	}
}
