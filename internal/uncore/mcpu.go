package uncore

import (
	"slices"

	"github.com/coyote-sim/coyote/internal/evsim"
)

// MCPU models the paper's Memory Controller CPUs (§I): processors at the
// memory controllers that "operate on vectors, both dense and sparse with
// the help of vector index registers for scatter/gather operations". When
// gather offload is enabled (cpu.Config.MCPUOffload), an indexed vector
// access leaves the core as ONE descriptor instead of per-element cache
// transactions: the MCPU fans the element addresses out to the memory
// channels at line granularity, collects the data, and returns a single
// response. Gathered data bypasses the L2 (no pollution, no lookup
// latency) at the cost of never hitting in it.
type MCPU struct {
	u *Uncore

	// In-flight descriptors, addressed by slot id. Scheduled events carry
	// the id — not a pointer — so a descriptor mid-flight survives
	// checkpoint/restore: the restored engine's events name the same slot
	// in the restored table. free holds the recyclable ids.
	txns []gatherTxn
	free []uint32

	issueFn func(uint64) // descriptor arrives at the memory side; arg = slot id
	issueH  evsim.Handle
	lineFn  func(uint64) // one line transfer completed; arg = slot id
	lineH   evsim.Handle

	gathers  uint64 // descriptors processed (loads)
	scatters uint64 // descriptors processed (stores)
	elements uint64 // total element addresses seen
	lines    uint64 // unique lines touched after coalescing
}

func newMCPU(u *Uncore) *MCPU {
	m := &MCPU{u: u}
	m.issueFn = m.issue
	m.issueH = u.eng.RegisterFn(m.issueFn)
	m.lineFn = m.lineDone
	m.lineH = u.eng.RegisterFn(m.lineFn)
	return m
}

// MCPUUnit returns the gather/scatter engine (always present; idle unless
// the cores offload to it).
func (u *Uncore) MCPUUnit() *MCPU { return u.mcpu }

// gatherTxn is one in-flight scatter/gather descriptor: the coalesced
// line list, the remaining-line count and the final completion. Slots are
// recycled through the free list — the steady-state gather path allocates
// nothing.
type gatherTxn struct {
	lines     []uint64 // coalesced unique line addresses, sorted
	write     bool
	remaining int
	done      Done
	active    bool
}

func (m *MCPU) getTxn() uint32 {
	if n := len(m.free); n > 0 {
		id := m.free[n-1]
		m.free = m.free[:n-1]
		m.txns[id].active = true
		return id
	}
	m.txns = append(m.txns, gatherTxn{active: true}) //coyote:alloc-ok pool refill: one slot per pool high-water mark, then recycled forever
	return uint32(len(m.txns) - 1)
}

func (m *MCPU) putTxn(id uint32) {
	t := &m.txns[id]
	t.done = Done{}
	t.active = false
	m.free = append(m.free, id)
}

//coyote:allocfree
func (m *MCPU) issue(id uint64) {
	u := m.u
	t := &m.txns[id]
	if t.write {
		for _, line := range t.lines {
			u.mcFor(line).request(line, true, 0, Done{})
		}
		m.putTxn(uint32(id))
		return
	}
	t.remaining = len(t.lines)
	if t.remaining == 0 {
		// Empty gather: still a round trip.
		if t.done.F != nil {
			u.eng.ScheduleArgH(u.noc.delay(true), t.done.F, t.done.Arg, t.done.H)
		}
		m.putTxn(uint32(id))
		return
	}
	for _, line := range t.lines {
		u.mcFor(line).request(line, false, 0, Done{F: m.lineFn, Arg: id, H: m.lineH})
	}
}

//coyote:allocfree
func (m *MCPU) lineDone(id uint64) {
	t := &m.txns[id]
	t.remaining--
	if t.remaining > 0 {
		return
	}
	u := m.u
	if t.done.F != nil {
		u.eng.ScheduleArgH(u.noc.delay(true), t.done.F, t.done.Arg, t.done.H)
	}
	m.putTxn(uint32(id))
}

// SubmitGather hands a coalesced scatter/gather descriptor to the MCPU.
// addrs are element addresses (any order, duplicates allowed); done fires
// once every line has completed (zero for scatters). The descriptor takes
// one NoC traversal to reach the memory side and one to respond.
//
// Coalescing sorts the unique lines: beyond matching the aggregate
// semantics the paper attributes to the MCPU, the sorted order makes the
// per-channel issue order — and therefore bandwidth queueing and
// row-buffer timing — deterministic. (The previous map-based coalescing
// issued lines in Go's randomized map order, which could perturb
// simulated timing between identical runs.)
//
//coyote:allocfree
func (u *Uncore) SubmitGather(tile int, addrs []uint64, write bool, done Done) {
	_ = tile // the crossbar is distance-uniform; kept for future topologies
	m := u.mcpu
	if write {
		m.scatters++
	} else {
		m.gathers++
	}
	m.elements += uint64(len(addrs))

	id := m.getTxn()
	t := &m.txns[id]
	t.write = write
	t.done = done
	t.lines = t.lines[:0]
	mask := ^uint64(0) << u.lineShift
	for _, a := range addrs {
		t.lines = append(t.lines, a&mask)
	}
	slices.Sort(t.lines)
	uniq := t.lines[:0]
	var prev uint64
	for i, line := range t.lines {
		if i == 0 || line != prev {
			uniq = append(uniq, line)
			prev = line
		}
	}
	t.lines = uniq
	m.lines += uint64(len(t.lines))

	u.eng.ScheduleArgH(u.noc.delay(true), m.issueFn, uint64(id), m.issueH)
}

// Name implements evsim.Unit.
func (m *MCPU) Name() string { return "mcpu" }

// Counters implements evsim.Unit.
func (m *MCPU) Counters() map[string]uint64 {
	return map[string]uint64{
		"gathers":  m.gathers,
		"scatters": m.scatters,
		"elements": m.elements,
		"lines":    m.lines,
	}
}
