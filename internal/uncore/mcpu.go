package uncore

// MCPU models the paper's Memory Controller CPUs (§I): processors at the
// memory controllers that "operate on vectors, both dense and sparse with
// the help of vector index registers for scatter/gather operations". When
// gather offload is enabled (cpu.Config.MCPUOffload), an indexed vector
// access leaves the core as ONE descriptor instead of per-element cache
// transactions: the MCPU fans the element addresses out to the memory
// channels at line granularity, collects the data, and returns a single
// response. Gathered data bypasses the L2 (no pollution, no lookup
// latency) at the cost of never hitting in it.
type MCPU struct {
	u *Uncore

	gathers  uint64 // descriptors processed (loads)
	scatters uint64 // descriptors processed (stores)
	elements uint64 // total element addresses seen
	lines    uint64 // unique lines touched after coalescing
}

func newMCPU(u *Uncore) *MCPU { return &MCPU{u: u} }

// MCPUUnit returns the gather/scatter engine (always present; idle unless
// the cores offload to it).
func (u *Uncore) MCPUUnit() *MCPU { return u.mcpu }

// SubmitGather hands a coalesced scatter/gather descriptor to the MCPU.
// addrs are element addresses (any order, duplicates allowed); done fires
// once every line has completed (nil for scatters). The descriptor takes
// one NoC traversal to reach the memory side and one to respond.
func (u *Uncore) SubmitGather(tile int, addrs []uint64, write bool, done func()) {
	_ = tile // the crossbar is distance-uniform; kept for future topologies
	m := u.mcpu
	if write {
		m.scatters++
	} else {
		m.gathers++
	}
	m.elements += uint64(len(addrs))

	// Coalesce to unique lines (the aggregate-semantics benefit the paper
	// attributes to the MCPU: it sees the whole access pattern at once).
	lineSet := make(map[uint64]struct{}, len(addrs))
	for _, a := range addrs {
		lineSet[a>>u.lineShift<<u.lineShift] = struct{}{}
	}
	m.lines += uint64(len(lineSet))

	toMem := u.noc.delay(true)
	u.eng.Schedule(toMem, func() {
		if write {
			for line := range lineSet {
				u.mcFor(line).request(line, true, 0, nil)
			}
			return
		}
		remaining := len(lineSet)
		if remaining == 0 {
			remaining = 1 // empty gather: still a round trip
			u.eng.Schedule(u.noc.delay(true), done)
			return
		}
		for line := range lineSet {
			u.mcFor(line).request(line, false, 0, func() {
				remaining--
				if remaining == 0 && done != nil {
					u.eng.Schedule(u.noc.delay(true), done)
				}
			})
		}
	})
}

// Name implements evsim.Unit.
func (m *MCPU) Name() string { return "mcpu" }

// Counters implements evsim.Unit.
func (m *MCPU) Counters() map[string]uint64 {
	return map[string]uint64{
		"gathers":  m.gathers,
		"scatters": m.scatters,
		"elements": m.elements,
		"lines":    m.lines,
	}
}
