package uncore

import "slices"

// MCPU models the paper's Memory Controller CPUs (§I): processors at the
// memory controllers that "operate on vectors, both dense and sparse with
// the help of vector index registers for scatter/gather operations". When
// gather offload is enabled (cpu.Config.MCPUOffload), an indexed vector
// access leaves the core as ONE descriptor instead of per-element cache
// transactions: the MCPU fans the element addresses out to the memory
// channels at line granularity, collects the data, and returns a single
// response. Gathered data bypasses the L2 (no pollution, no lookup
// latency) at the cost of never hitting in it.
type MCPU struct {
	u *Uncore

	txnPool []*gatherTxn

	gathers  uint64 // descriptors processed (loads)
	scatters uint64 // descriptors processed (stores)
	elements uint64 // total element addresses seen
	lines    uint64 // unique lines touched after coalescing
}

func newMCPU(u *Uncore) *MCPU { return &MCPU{u: u} }

// MCPUUnit returns the gather/scatter engine (always present; idle unless
// the cores offload to it).
func (u *Uncore) MCPUUnit() *MCPU { return u.mcpu }

// gatherTxn is one in-flight scatter/gather descriptor: the coalesced
// line list, the remaining-line count, and the pre-bound stage callbacks.
// Pooled — the steady-state gather path allocates nothing.
type gatherTxn struct {
	u         *Uncore
	lines     []uint64 // coalesced unique line addresses, sorted
	write     bool
	remaining int
	done      Done

	issueFn  func() // descriptor arrives at the memory side
	lineDone Done   // one line transfer completed
}

func (m *MCPU) getTxn() *gatherTxn {
	if n := len(m.txnPool); n > 0 {
		t := m.txnPool[n-1]
		m.txnPool = m.txnPool[:n-1]
		return t
	}
	t := &gatherTxn{u: m.u} //coyote:alloc-ok pool refill: one transaction per pool high-water mark, then recycled forever
	t.issueFn = t.issue //coyote:alloc-ok binds the stage callback once per pooled transaction lifetime
	t.lineDone = Done{F: t.lineDoneFn} //coyote:alloc-ok binds the line-completion callback once per pooled transaction lifetime
	return t
}

func (m *MCPU) putTxn(t *gatherTxn) {
	t.done = Done{}
	m.txnPool = append(m.txnPool, t)
}

//coyote:allocfree
func (t *gatherTxn) issue() {
	u := t.u
	if t.write {
		for _, line := range t.lines {
			u.mcFor(line).request(line, true, 0, Done{})
		}
		u.mcpu.putTxn(t)
		return
	}
	t.remaining = len(t.lines)
	if t.remaining == 0 {
		// Empty gather: still a round trip.
		if t.done.F != nil {
			u.eng.ScheduleArg(u.noc.delay(true), t.done.F, t.done.Arg)
		}
		u.mcpu.putTxn(t)
		return
	}
	for _, line := range t.lines {
		u.mcFor(line).request(line, false, 0, t.lineDone)
	}
}

//coyote:allocfree
func (t *gatherTxn) lineDoneFn(uint64) {
	t.remaining--
	if t.remaining > 0 {
		return
	}
	u := t.u
	if t.done.F != nil {
		u.eng.ScheduleArg(u.noc.delay(true), t.done.F, t.done.Arg)
	}
	u.mcpu.putTxn(t)
}

// SubmitGather hands a coalesced scatter/gather descriptor to the MCPU.
// addrs are element addresses (any order, duplicates allowed); done fires
// once every line has completed (zero for scatters). The descriptor takes
// one NoC traversal to reach the memory side and one to respond.
//
// Coalescing sorts the unique lines: beyond matching the aggregate
// semantics the paper attributes to the MCPU, the sorted order makes the
// per-channel issue order — and therefore bandwidth queueing and
// row-buffer timing — deterministic. (The previous map-based coalescing
// issued lines in Go's randomized map order, which could perturb
// simulated timing between identical runs.)
//
//coyote:allocfree
func (u *Uncore) SubmitGather(tile int, addrs []uint64, write bool, done Done) {
	_ = tile // the crossbar is distance-uniform; kept for future topologies
	m := u.mcpu
	if write {
		m.scatters++
	} else {
		m.gathers++
	}
	m.elements += uint64(len(addrs))

	t := m.getTxn()
	t.write = write
	t.done = done
	t.lines = t.lines[:0]
	mask := ^uint64(0) << u.lineShift
	for _, a := range addrs {
		t.lines = append(t.lines, a&mask)
	}
	slices.Sort(t.lines)
	uniq := t.lines[:0]
	var prev uint64
	for i, line := range t.lines {
		if i == 0 || line != prev {
			uniq = append(uniq, line)
			prev = line
		}
	}
	t.lines = uniq
	m.lines += uint64(len(t.lines))

	u.eng.Schedule(u.noc.delay(true), t.issueFn)
}

// Name implements evsim.Unit.
func (m *MCPU) Name() string { return "mcpu" }

// Counters implements evsim.Unit.
func (m *MCPU) Counters() map[string]uint64 {
	return map[string]uint64{
		"gathers":  m.gathers,
		"scatters": m.scatters,
		"elements": m.elements,
		"lines":    m.lines,
	}
}
