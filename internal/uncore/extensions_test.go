package uncore

// Tests for the optional uncore extensions: the Figure-2 LLC level, L2
// next-line prefetching and the DRAM row-buffer model.

import (
	"testing"

	"github.com/coyote-sim/coyote/internal/cache"
	"github.com/coyote-sim/coyote/internal/evsim"
)

func llcConfig() Config {
	cfg := testConfig()
	cfg.LLCEnable = true
	cfg.LLC = cache.Config{SizeBytes: 64 << 10, Ways: 8, LineBytes: 64, WriteBack: true}
	cfg.LLCHitLatency = 20
	return cfg
}

func TestLLCHitShortCircuitsDRAM(t *testing.T) {
	cfg := llcConfig()
	u, eng := newTestUncore(t, cfg)
	if len(u.LLCs()) != cfg.MemCtrls {
		t.Fatalf("llc slices = %d, want %d", len(u.LLCs()), cfg.MemCtrls)
	}
	addr := uint64(0x40000)
	// Cold miss fills both L2 and LLC.
	roundTrip(t, u, eng, 0, addr)
	// Evict the line from L2 only by filling its set with conflicts.
	sets := uint64(cfg.L2.Sets())
	stride := sets * uint64(cfg.L2.LineBytes) * uint64(len(u.Banks()))
	for i := uint64(1); i <= uint64(cfg.L2.Ways); i++ {
		roundTrip(t, u, eng, 0, addr+i*stride)
	}
	sumReads := func() (n uint64) {
		for _, mc := range u.MemCtrls() {
			n += mc.Reads()
		}
		return n
	}
	reads0 := sumReads()
	start := eng.Now()
	llcTime := roundTrip(t, u, eng, 0, addr) - start
	reads1 := sumReads()
	if reads1 != reads0 {
		t.Errorf("LLC hit went to DRAM: reads %d → %d", reads0, reads1)
	}
	if llcTime >= cfg.MemLatency {
		t.Errorf("LLC hit latency %d not faster than DRAM %d", llcTime, cfg.MemLatency)
	}
	var hits uint64
	for _, s := range u.LLCs() {
		hits += s.CacheStats().Hits
	}
	if hits == 0 {
		t.Error("no LLC hits recorded")
	}
}

func TestLLCDisabledHasNoSlices(t *testing.T) {
	u, _ := newTestUncore(t, testConfig())
	if u.LLCs() != nil {
		t.Error("LLC slices created while disabled")
	}
}

func TestLLCValidation(t *testing.T) {
	cfg := llcConfig()
	cfg.LLC.LineBytes = 60
	if err := cfg.Validate(); err == nil {
		t.Error("bad LLC geometry accepted")
	}
}

func TestPrefetchTurnsStreamMissesIntoHits(t *testing.T) {
	run := func(depth int) (hits, misses, prefetches uint64) {
		cfg := testConfig()
		cfg.Tiles = 1
		cfg.BanksPerTile = 1
		cfg.MemCtrls = 1
		cfg.PrefetchDepth = depth
		cfg.L2MSHRs = 32
		u, eng := newTestUncore(t, cfg)
		// Sequential stream of 64 lines, strictly one at a time (so the
		// prefetcher, not MSHR merging, provides the benefit).
		for i := uint64(0); i < 64; i++ {
			roundTrip(t, u, eng, 0, 0x100000+i*64)
		}
		b := u.Banks()[0]
		s := b.CacheStats()
		return s.Hits, s.Misses, b.prefetches
	}
	h0, m0, p0 := run(0)
	h4, m4, p4 := run(4)
	if p0 != 0 {
		t.Errorf("prefetches issued with depth 0: %d", p0)
	}
	if p4 == 0 {
		t.Error("no prefetches issued with depth 4")
	}
	if h4 <= h0 || m4 >= m0 {
		t.Errorf("prefetching should convert misses to hits: depth0 %d/%d, depth4 %d/%d",
			h0, m0, h4, m4)
	}
}

func TestPrefetchRespectsMSHRBudget(t *testing.T) {
	cfg := testConfig()
	cfg.Tiles = 1
	cfg.BanksPerTile = 1
	cfg.MemCtrls = 1
	cfg.PrefetchDepth = 16
	cfg.L2MSHRs = 2
	u, eng := newTestUncore(t, cfg)
	done := 0
	for i := uint64(0); i < 8; i++ {
		u.Submit(Request{Tile: 0, Addr: 0x100000 + i*1024, Done: FuncDone(func() { done++ })})
	}
	eng.Drain()
	if done != 8 {
		t.Fatalf("demand requests starved by prefetches: %d/8 done", done)
	}
}

func TestRowBufferModel(t *testing.T) {
	run := func(rowBits uint) (evsim.Cycle, uint64, uint64) {
		cfg := testConfig()
		cfg.Tiles = 1
		cfg.BanksPerTile = 1
		cfg.MemCtrls = 1
		cfg.MemRowBits = rowBits
		cfg.MemRowHitLat = 20
		u, eng := newTestUncore(t, cfg)
		// Walk 32 consecutive lines of one 8 KiB row, one at a time.
		var last evsim.Cycle
		for i := uint64(0); i < 32; i++ {
			last = roundTrip(t, u, eng, 0, 0x200000+i*64)
		}
		mc := u.MemCtrls()[0]
		return last, mc.rowHits, mc.rowMisses
	}
	flatEnd, h0, m0 := run(0)
	rowEnd, h1, m1 := run(13) // 8 KiB rows
	if h0 != 0 || m0 != 0 {
		t.Errorf("row stats counted while disabled: %d/%d", h0, m0)
	}
	if h1 == 0 || m1 == 0 {
		t.Errorf("row model: hits %d misses %d", h1, m1)
	}
	if rowEnd >= flatEnd {
		t.Errorf("open-row stream (%d) should finish before flat-latency stream (%d)",
			rowEnd, flatEnd)
	}
}

func TestRowBufferValidation(t *testing.T) {
	cfg := testConfig()
	cfg.MemRowBits = 13
	cfg.MemRowHitLat = 0
	if err := cfg.Validate(); err == nil {
		t.Error("row model without hit latency accepted")
	}
}
