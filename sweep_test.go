package coyote

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func sweepPoints() []Point {
	var pts []Point
	for _, cores := range []int{1, 2, 4} {
		for _, kernel := range []string{"axpy-scalar", "spmv-scalar"} {
			pts = append(pts, Point{
				Name:   fmt.Sprintf("%s/%d", kernel, cores),
				Kernel: kernel,
				Params: Params{N: 128, Cores: cores},
				Config: DefaultConfig(cores),
			})
		}
	}
	return pts
}

func TestSweepMatchesSerialRuns(t *testing.T) {
	parallel := Sweep(sweepPoints(), 3)
	serial := Sweep(sweepPoints(), 1)
	if len(parallel) != len(serial) {
		t.Fatal("length mismatch")
	}
	for i := range parallel {
		p, s := parallel[i], serial[i]
		if p.Err != nil || s.Err != nil {
			t.Fatalf("%s: errs %v / %v", p.Name, p.Err, s.Err)
		}
		if p.Name != s.Name {
			t.Fatalf("order not preserved: %s vs %s", p.Name, s.Name)
		}
		if p.Result.Cycles != s.Result.Cycles ||
			p.Result.Instructions != s.Result.Instructions {
			t.Errorf("%s: parallel %d/%d vs serial %d/%d cycles/instrs",
				p.Name, p.Result.Cycles, p.Result.Instructions,
				s.Result.Cycles, s.Result.Instructions)
		}
	}
}

func TestSweepPropagatesErrors(t *testing.T) {
	res := Sweep([]Point{{
		Name:   "bad",
		Kernel: "no-such-kernel",
		Params: Params{N: 16, Cores: 1},
		Config: DefaultConfig(1),
	}}, 1)
	if res[0].Err == nil {
		t.Error("missing error for unknown kernel")
	}
}

func TestSweepWorkerClamping(t *testing.T) {
	pts := sweepPoints()[:2]
	for _, workers := range []int{0, -1, 100} {
		res := Sweep(pts, workers)
		if len(res) != 2 || res[0].Err != nil || res[1].Err != nil {
			t.Fatalf("workers=%d: %+v", workers, res)
		}
	}
}

// TestSweepOversubscriptionGuard checks the outer-pool cap: when sweep
// points run inner in-cycle worker pools, outer × inner must stay within
// GOMAXPROCS; without inner pools the historical uncapped contract holds.
func TestSweepOversubscriptionGuard(t *testing.T) {
	cases := []struct {
		name                           string
		workers, npoints, inner, procs int
		want                           int
	}{
		{"serial points keep request", 6, 10, 1, 4, 6},
		{"serial points clamp to npoints", 20, 10, 1, 4, 10},
		{"zero means one per point", 0, 10, 1, 4, 10},
		{"inner pools split the budget", 8, 10, 4, 8, 2},
		{"budget rounds down", 8, 10, 3, 8, 2},
		{"never below one point at a time", 8, 10, 4, 1, 1},
		{"request below budget untouched", 2, 10, 2, 16, 2},
		{"empty sweep stays empty", 4, 0, 4, 1, 0},
	}
	for _, c := range cases {
		if got := capOuterWorkers(c.workers, c.npoints, c.inner, c.procs); got != c.want {
			t.Errorf("%s: capOuterWorkers(%d, %d, %d, %d) = %d, want %d",
				c.name, c.workers, c.npoints, c.inner, c.procs, got, c.want)
		}
	}
}

// TestSweepMaxInnerWorkers checks that the sweep sizes the guard from the
// largest effective inner pool, which is bounded by each point's core
// count just like core.System.startWorkers bounds the real pool.
func TestSweepMaxInnerWorkers(t *testing.T) {
	mk := func(cores, workers int) Point {
		cfg := DefaultConfig(cores)
		cfg.Workers = workers
		return Point{Config: cfg}
	}
	if got := maxInnerWorkers(nil); got != 1 {
		t.Errorf("empty sweep: inner = %d, want 1", got)
	}
	if got := maxInnerWorkers([]Point{mk(4, 0), mk(8, 1)}); got != 1 {
		t.Errorf("serial points: inner = %d, want 1", got)
	}
	if got := maxInnerWorkers([]Point{mk(4, 2), mk(8, 6), mk(2, 1)}); got != 6 {
		t.Errorf("mixed points: inner = %d, want 6", got)
	}
	// A 2-core point asking for 16 workers only ever starts 2.
	if got := maxInnerWorkers([]Point{mk(2, 16)}); got != 2 {
		t.Errorf("core-bounded point: inner = %d, want 2", got)
	}
}

// TestSweepParallelPointsDeterministic runs a small sweep whose points
// themselves use the parallel orchestrator and checks results still match
// fully serial execution of the same points.
func TestSweepParallelPointsDeterministic(t *testing.T) {
	mk := func(workers int) []Point {
		var pts []Point
		for _, kernel := range []string{"axpy-scalar", "spmv-scalar"} {
			cfg := DefaultConfig(2)
			cfg.Workers = workers
			pts = append(pts, Point{
				Name:   kernel,
				Kernel: kernel,
				Params: Params{N: 64, Cores: 2},
				Config: cfg,
			})
		}
		return pts
	}
	serial := Sweep(mk(1), 1)
	parallel := Sweep(mk(2), 4)
	for i := range serial {
		p, s := parallel[i], serial[i]
		if p.Err != nil || s.Err != nil {
			t.Fatalf("%s: errs %v / %v", s.Name, p.Err, s.Err)
		}
		if p.Result.Cycles != s.Result.Cycles ||
			p.Result.Instructions != s.Result.Instructions {
			t.Errorf("%s: workers=2 sweep %d/%d vs serial %d/%d cycles/instrs",
				s.Name, p.Result.Cycles, p.Result.Instructions,
				s.Result.Cycles, s.Result.Instructions)
		}
	}
}

// TestSweepWorkerPool drives sweepWith with a fake run function and
// checks the pool contract: input-order results, every point run exactly
// once, and never more than `workers` runs in flight at once.
func TestSweepWorkerPool(t *testing.T) {
	const npoints, workers = 40, 3
	points := make([]Point, npoints)
	for i := range points {
		points[i].Name = fmt.Sprintf("p%02d", i)
	}

	var inFlight, peak, runs atomic.Int64
	// Rendezvous: the first `workers` runs block until all of them have
	// started, so the test actually observes the full pool concurrently
	// rather than one fast worker draining the queue alone.
	var gate sync.WaitGroup
	gate.Add(workers)

	res := sweepWith(points, workers, func(p Point) (*Result, string, error) {
		n := inFlight.Add(1)
		for {
			old := peak.Load()
			if n <= old || peak.CompareAndSwap(old, n) {
				break
			}
		}
		if runs.Add(1) <= workers {
			gate.Done()
			gate.Wait()
		}
		inFlight.Add(-1)
		return &Result{Instructions: uint64(p.Name[1])}, "", nil
	})

	if len(res) != npoints {
		t.Fatalf("got %d results, want %d", len(res), npoints)
	}
	for i, r := range res {
		if r.Name != points[i].Name {
			t.Fatalf("result %d: got %s, want %s — input order not preserved", i, r.Name, points[i].Name)
		}
		if r.Err != nil || r.Result == nil {
			t.Fatalf("result %d: %v", i, r.Err)
		}
	}
	if got := runs.Load(); got != npoints {
		t.Errorf("run function called %d times, want %d", got, npoints)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("observed %d concurrent runs, want at most %d", p, workers)
	}
	if p := peak.Load(); p < workers {
		t.Errorf("observed only %d concurrent runs with %d workers and a rendezvous gate", p, workers)
	}
}

// TestSweepCachedDedup is the regression test for the historical dedup
// gap: a sweep containing N identical points used to simulate every
// copy independently. With the single-flight cache in place, N copies
// must cost exactly ONE simulation while all N PointResults come back
// populated, in input order, with the same committed state.
func TestSweepCachedDedup(t *testing.T) {
	const copies = 8
	points := make([]Point, copies)
	for i := range points {
		points[i] = Point{
			Name:   fmt.Sprintf("copy%d", i),
			Kernel: "axpy-scalar",
			Params: Params{N: 64, Cores: 2},
			Config: DefaultConfig(2),
		}
	}

	// Injected-runner variant: count the actual simulations.
	cache := NewResultCache(0)
	var sims atomic.Int64
	res := sweepWith(points, 4, func(p Point) (*Result, string, error) {
		key, err := KeyForPoint(p.Kernel, p.Params, p.Config)
		if err != nil {
			return nil, "", err
		}
		r, st, err := cache.GetOrCompute(key, func() (*Result, error) {
			sims.Add(1)
			return RunKernel(p.Kernel, p.Params, p.Config)
		})
		if err != nil {
			return nil, "", err
		}
		return r, st.String(), nil
	})

	if got := sims.Load(); got != 1 {
		t.Fatalf("%d identical points cost %d simulations, want exactly 1", copies, got)
	}
	statuses := map[string]int{}
	for i, r := range res {
		if r.Err != nil || r.Result == nil {
			t.Fatalf("result %d: %v", i, r.Err)
		}
		if r.Name != points[i].Name {
			t.Fatalf("result %d: got %s, want %s — input order not preserved", i, r.Name, points[i].Name)
		}
		if r.Result.Cycles != res[0].Result.Cycles {
			t.Fatalf("result %d: %d cycles, want %d", i, r.Result.Cycles, res[0].Result.Cycles)
		}
		statuses[r.Cache]++
	}
	if statuses["miss"] != 1 {
		t.Errorf("statuses %v: want exactly one miss", statuses)
	}
	if statuses["hit"]+statuses["coalesced"] != copies-1 {
		t.Errorf("statuses %v: want %d hit/coalesced", statuses, copies-1)
	}

	// Public-API variant: SweepCached reports the same contract through
	// its Cache fields and the cache's own accounting.
	cache2 := NewResultCache(0)
	res2 := SweepCached(points, 4, cache2)
	for i, r := range res2 {
		if r.Err != nil || r.Result == nil {
			t.Fatalf("SweepCached result %d: %v", i, r.Err)
		}
		if r.Result.Cycles != res[0].Result.Cycles {
			t.Fatalf("SweepCached result %d: %d cycles, want %d", i, r.Result.Cycles, res[0].Result.Cycles)
		}
	}
	if s := cache2.Stats(); s.Misses != 1 || s.Lookups() != copies {
		t.Errorf("SweepCached stats %+v: want 1 miss of %d lookups", s, copies)
	}
}

// TestSweepCachedMatchesSweep checks cached sweeps serve the exact
// committed state an uncached sweep produces, and that a warm re-sweep
// is all hits with zero additional misses.
func TestSweepCachedMatchesSweep(t *testing.T) {
	points := sweepPoints()
	plain := Sweep(points, 2)

	cache := NewResultCache(0)
	cold := SweepCached(points, 2, cache)
	warm := SweepCached(points, 2, cache)

	for i := range plain {
		if plain[i].Err != nil || cold[i].Err != nil || warm[i].Err != nil {
			t.Fatalf("%s: errs %v / %v / %v", plain[i].Name, plain[i].Err, cold[i].Err, warm[i].Err)
		}
		for _, r := range []PointResult{cold[i], warm[i]} {
			if r.Result.Cycles != plain[i].Result.Cycles ||
				r.Result.Instructions != plain[i].Result.Instructions {
				t.Errorf("%s [%s]: cached %d/%d vs plain %d/%d cycles/instrs",
					r.Name, r.Cache, r.Result.Cycles, r.Result.Instructions,
					plain[i].Result.Cycles, plain[i].Result.Instructions)
			}
		}
		if warm[i].Cache != "hit" {
			t.Errorf("%s: warm status %q, want hit", warm[i].Name, warm[i].Cache)
		}
		if plain[i].Cache != "" {
			t.Errorf("%s: uncached sweep recorded status %q", plain[i].Name, plain[i].Cache)
		}
	}
	s := cache.Stats()
	if int(s.Misses) != len(points) {
		t.Errorf("cold misses %d, want %d", s.Misses, len(points))
	}
	if int(s.Hits) < len(points) {
		t.Errorf("warm hits %d, want at least %d", s.Hits, len(points))
	}
}
