package coyote

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func sweepPoints() []Point {
	var pts []Point
	for _, cores := range []int{1, 2, 4} {
		for _, kernel := range []string{"axpy-scalar", "spmv-scalar"} {
			pts = append(pts, Point{
				Name:   fmt.Sprintf("%s/%d", kernel, cores),
				Kernel: kernel,
				Params: Params{N: 128, Cores: cores},
				Config: DefaultConfig(cores),
			})
		}
	}
	return pts
}

func TestSweepMatchesSerialRuns(t *testing.T) {
	parallel := Sweep(sweepPoints(), 3)
	serial := Sweep(sweepPoints(), 1)
	if len(parallel) != len(serial) {
		t.Fatal("length mismatch")
	}
	for i := range parallel {
		p, s := parallel[i], serial[i]
		if p.Err != nil || s.Err != nil {
			t.Fatalf("%s: errs %v / %v", p.Name, p.Err, s.Err)
		}
		if p.Name != s.Name {
			t.Fatalf("order not preserved: %s vs %s", p.Name, s.Name)
		}
		if p.Result.Cycles != s.Result.Cycles ||
			p.Result.Instructions != s.Result.Instructions {
			t.Errorf("%s: parallel %d/%d vs serial %d/%d cycles/instrs",
				p.Name, p.Result.Cycles, p.Result.Instructions,
				s.Result.Cycles, s.Result.Instructions)
		}
	}
}

func TestSweepPropagatesErrors(t *testing.T) {
	res := Sweep([]Point{{
		Name:   "bad",
		Kernel: "no-such-kernel",
		Params: Params{N: 16, Cores: 1},
		Config: DefaultConfig(1),
	}}, 1)
	if res[0].Err == nil {
		t.Error("missing error for unknown kernel")
	}
}

func TestSweepWorkerClamping(t *testing.T) {
	pts := sweepPoints()[:2]
	for _, workers := range []int{0, -1, 100} {
		res := Sweep(pts, workers)
		if len(res) != 2 || res[0].Err != nil || res[1].Err != nil {
			t.Fatalf("workers=%d: %+v", workers, res)
		}
	}
}

// TestSweepOversubscriptionGuard checks the outer-pool cap: when sweep
// points run inner in-cycle worker pools, outer × inner must stay within
// GOMAXPROCS; without inner pools the historical uncapped contract holds.
func TestSweepOversubscriptionGuard(t *testing.T) {
	cases := []struct {
		name                           string
		workers, npoints, inner, procs int
		want                           int
	}{
		{"serial points keep request", 6, 10, 1, 4, 6},
		{"serial points clamp to npoints", 20, 10, 1, 4, 10},
		{"zero means one per point", 0, 10, 1, 4, 10},
		{"inner pools split the budget", 8, 10, 4, 8, 2},
		{"budget rounds down", 8, 10, 3, 8, 2},
		{"never below one point at a time", 8, 10, 4, 1, 1},
		{"request below budget untouched", 2, 10, 2, 16, 2},
		{"empty sweep stays empty", 4, 0, 4, 1, 0},
	}
	for _, c := range cases {
		if got := capOuterWorkers(c.workers, c.npoints, c.inner, c.procs); got != c.want {
			t.Errorf("%s: capOuterWorkers(%d, %d, %d, %d) = %d, want %d",
				c.name, c.workers, c.npoints, c.inner, c.procs, got, c.want)
		}
	}
}

// TestSweepMaxInnerWorkers checks that the sweep sizes the guard from the
// largest effective inner pool, which is bounded by each point's core
// count just like core.System.startWorkers bounds the real pool.
func TestSweepMaxInnerWorkers(t *testing.T) {
	mk := func(cores, workers int) Point {
		cfg := DefaultConfig(cores)
		cfg.Workers = workers
		return Point{Config: cfg}
	}
	if got := maxInnerWorkers(nil); got != 1 {
		t.Errorf("empty sweep: inner = %d, want 1", got)
	}
	if got := maxInnerWorkers([]Point{mk(4, 0), mk(8, 1)}); got != 1 {
		t.Errorf("serial points: inner = %d, want 1", got)
	}
	if got := maxInnerWorkers([]Point{mk(4, 2), mk(8, 6), mk(2, 1)}); got != 6 {
		t.Errorf("mixed points: inner = %d, want 6", got)
	}
	// A 2-core point asking for 16 workers only ever starts 2.
	if got := maxInnerWorkers([]Point{mk(2, 16)}); got != 2 {
		t.Errorf("core-bounded point: inner = %d, want 2", got)
	}
}

// TestSweepParallelPointsDeterministic runs a small sweep whose points
// themselves use the parallel orchestrator and checks results still match
// fully serial execution of the same points.
func TestSweepParallelPointsDeterministic(t *testing.T) {
	mk := func(workers int) []Point {
		var pts []Point
		for _, kernel := range []string{"axpy-scalar", "spmv-scalar"} {
			cfg := DefaultConfig(2)
			cfg.Workers = workers
			pts = append(pts, Point{
				Name:   kernel,
				Kernel: kernel,
				Params: Params{N: 64, Cores: 2},
				Config: cfg,
			})
		}
		return pts
	}
	serial := Sweep(mk(1), 1)
	parallel := Sweep(mk(2), 4)
	for i := range serial {
		p, s := parallel[i], serial[i]
		if p.Err != nil || s.Err != nil {
			t.Fatalf("%s: errs %v / %v", s.Name, p.Err, s.Err)
		}
		if p.Result.Cycles != s.Result.Cycles ||
			p.Result.Instructions != s.Result.Instructions {
			t.Errorf("%s: workers=2 sweep %d/%d vs serial %d/%d cycles/instrs",
				s.Name, p.Result.Cycles, p.Result.Instructions,
				s.Result.Cycles, s.Result.Instructions)
		}
	}
}

// TestSweepWorkerPool drives sweepWith with a fake run function and
// checks the pool contract: input-order results, every point run exactly
// once, and never more than `workers` runs in flight at once.
func TestSweepWorkerPool(t *testing.T) {
	const npoints, workers = 40, 3
	points := make([]Point, npoints)
	for i := range points {
		points[i].Name = fmt.Sprintf("p%02d", i)
	}

	var inFlight, peak, runs atomic.Int64
	// Rendezvous: the first `workers` runs block until all of them have
	// started, so the test actually observes the full pool concurrently
	// rather than one fast worker draining the queue alone.
	var gate sync.WaitGroup
	gate.Add(workers)

	res := sweepWith(points, workers, func(p Point) (*Result, error) {
		n := inFlight.Add(1)
		for {
			old := peak.Load()
			if n <= old || peak.CompareAndSwap(old, n) {
				break
			}
		}
		if runs.Add(1) <= workers {
			gate.Done()
			gate.Wait()
		}
		inFlight.Add(-1)
		return &Result{Instructions: uint64(p.Name[1])}, nil
	})

	if len(res) != npoints {
		t.Fatalf("got %d results, want %d", len(res), npoints)
	}
	for i, r := range res {
		if r.Name != points[i].Name {
			t.Fatalf("result %d: got %s, want %s — input order not preserved", i, r.Name, points[i].Name)
		}
		if r.Err != nil || r.Result == nil {
			t.Fatalf("result %d: %v", i, r.Err)
		}
	}
	if got := runs.Load(); got != npoints {
		t.Errorf("run function called %d times, want %d", got, npoints)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("observed %d concurrent runs, want at most %d", p, workers)
	}
	if p := peak.Load(); p < workers {
		t.Errorf("observed only %d concurrent runs with %d workers and a rendezvous gate", p, workers)
	}
}
