package coyote

import (
	"fmt"
	"testing"
)

func sweepPoints() []Point {
	var pts []Point
	for _, cores := range []int{1, 2, 4} {
		for _, kernel := range []string{"axpy-scalar", "spmv-scalar"} {
			pts = append(pts, Point{
				Name:   fmt.Sprintf("%s/%d", kernel, cores),
				Kernel: kernel,
				Params: Params{N: 128, Cores: cores},
				Config: DefaultConfig(cores),
			})
		}
	}
	return pts
}

func TestSweepMatchesSerialRuns(t *testing.T) {
	parallel := Sweep(sweepPoints(), 3)
	serial := Sweep(sweepPoints(), 1)
	if len(parallel) != len(serial) {
		t.Fatal("length mismatch")
	}
	for i := range parallel {
		p, s := parallel[i], serial[i]
		if p.Err != nil || s.Err != nil {
			t.Fatalf("%s: errs %v / %v", p.Name, p.Err, s.Err)
		}
		if p.Name != s.Name {
			t.Fatalf("order not preserved: %s vs %s", p.Name, s.Name)
		}
		if p.Result.Cycles != s.Result.Cycles ||
			p.Result.Instructions != s.Result.Instructions {
			t.Errorf("%s: parallel %d/%d vs serial %d/%d cycles/instrs",
				p.Name, p.Result.Cycles, p.Result.Instructions,
				s.Result.Cycles, s.Result.Instructions)
		}
	}
}

func TestSweepPropagatesErrors(t *testing.T) {
	res := Sweep([]Point{{
		Name:   "bad",
		Kernel: "no-such-kernel",
		Params: Params{N: 16, Cores: 1},
		Config: DefaultConfig(1),
	}}, 1)
	if res[0].Err == nil {
		t.Error("missing error for unknown kernel")
	}
}

func TestSweepWorkerClamping(t *testing.T) {
	pts := sweepPoints()[:2]
	for _, workers := range []int{0, -1, 100} {
		res := Sweep(pts, workers)
		if len(res) != 2 || res[0].Err != nil || res[1].Err != nil {
			t.Fatalf("workers=%d: %+v", workers, res)
		}
	}
}
