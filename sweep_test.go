package coyote

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func sweepPoints() []Point {
	var pts []Point
	for _, cores := range []int{1, 2, 4} {
		for _, kernel := range []string{"axpy-scalar", "spmv-scalar"} {
			pts = append(pts, Point{
				Name:   fmt.Sprintf("%s/%d", kernel, cores),
				Kernel: kernel,
				Params: Params{N: 128, Cores: cores},
				Config: DefaultConfig(cores),
			})
		}
	}
	return pts
}

func TestSweepMatchesSerialRuns(t *testing.T) {
	parallel := Sweep(sweepPoints(), 3)
	serial := Sweep(sweepPoints(), 1)
	if len(parallel) != len(serial) {
		t.Fatal("length mismatch")
	}
	for i := range parallel {
		p, s := parallel[i], serial[i]
		if p.Err != nil || s.Err != nil {
			t.Fatalf("%s: errs %v / %v", p.Name, p.Err, s.Err)
		}
		if p.Name != s.Name {
			t.Fatalf("order not preserved: %s vs %s", p.Name, s.Name)
		}
		if p.Result.Cycles != s.Result.Cycles ||
			p.Result.Instructions != s.Result.Instructions {
			t.Errorf("%s: parallel %d/%d vs serial %d/%d cycles/instrs",
				p.Name, p.Result.Cycles, p.Result.Instructions,
				s.Result.Cycles, s.Result.Instructions)
		}
	}
}

func TestSweepPropagatesErrors(t *testing.T) {
	res := Sweep([]Point{{
		Name:   "bad",
		Kernel: "no-such-kernel",
		Params: Params{N: 16, Cores: 1},
		Config: DefaultConfig(1),
	}}, 1)
	if res[0].Err == nil {
		t.Error("missing error for unknown kernel")
	}
}

func TestSweepWorkerClamping(t *testing.T) {
	pts := sweepPoints()[:2]
	for _, workers := range []int{0, -1, 100} {
		res := Sweep(pts, workers)
		if len(res) != 2 || res[0].Err != nil || res[1].Err != nil {
			t.Fatalf("workers=%d: %+v", workers, res)
		}
	}
}

// TestSweepWorkerPool drives sweepWith with a fake run function and
// checks the pool contract: input-order results, every point run exactly
// once, and never more than `workers` runs in flight at once.
func TestSweepWorkerPool(t *testing.T) {
	const npoints, workers = 40, 3
	points := make([]Point, npoints)
	for i := range points {
		points[i].Name = fmt.Sprintf("p%02d", i)
	}

	var inFlight, peak, runs atomic.Int64
	// Rendezvous: the first `workers` runs block until all of them have
	// started, so the test actually observes the full pool concurrently
	// rather than one fast worker draining the queue alone.
	var gate sync.WaitGroup
	gate.Add(workers)

	res := sweepWith(points, workers, func(p Point) (*Result, error) {
		n := inFlight.Add(1)
		for {
			old := peak.Load()
			if n <= old || peak.CompareAndSwap(old, n) {
				break
			}
		}
		if runs.Add(1) <= workers {
			gate.Done()
			gate.Wait()
		}
		inFlight.Add(-1)
		return &Result{Instructions: uint64(p.Name[1])}, nil
	})

	if len(res) != npoints {
		t.Fatalf("got %d results, want %d", len(res), npoints)
	}
	for i, r := range res {
		if r.Name != points[i].Name {
			t.Fatalf("result %d: got %s, want %s — input order not preserved", i, r.Name, points[i].Name)
		}
		if r.Err != nil || r.Result == nil {
			t.Fatalf("result %d: %v", i, r.Err)
		}
	}
	if got := runs.Load(); got != npoints {
		t.Errorf("run function called %d times, want %d", got, npoints)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("observed %d concurrent runs, want at most %d", p, workers)
	}
	if p := peak.Load(); p < workers {
		t.Errorf("observed only %d concurrent runs with %d workers and a rendezvous gate", p, workers)
	}
}
