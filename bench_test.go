// Benchmark harness: one benchmark family per experiment in DESIGN.md §4.
// Every benchmark reports MIPS (the paper's Figure 3 metric: simulated
// instructions per wall-clock second) and simcycles (simulated execution
// time, the metric of the qualitative experiments). Regenerate everything
// with:
//
//	go test -bench=. -benchmem
//
// Use -benchtime 1x for a quick pass; larger -benchtime averages out
// wall-clock noise in the MIPS numbers.
package coyote

import (
	"fmt"
	"testing"
	"time"

	"github.com/coyote-sim/coyote/internal/san"
	"github.com/coyote-sim/coyote/internal/uncore"
)

// runPoint executes one kernel/config point b.N times, reporting MIPS and
// simulated cycles.
func runPoint(b *testing.B, kernel string, p Params, cfg Config) {
	b.Helper()
	var cycles uint64
	var mips float64
	for i := 0; i < b.N; i++ {
		res, err := RunKernel(kernel, p, cfg)
		if err != nil {
			b.Fatal(err)
		}
		cycles = res.Cycles
		mips += res.MIPS()
	}
	b.ReportMetric(mips/float64(b.N), "MIPS")
	b.ReportMetric(float64(cycles), "simcycles")
}

// --- E1/E2: Figure 3 — simulation throughput vs simulated core count ---

var fig3Cores = []int{1, 2, 4, 8, 16, 32, 64, 128}

// BenchmarkFig3Matmul sweeps core counts under the scalar matmul workload
// (weak-scaled: one matrix row per core, minimum 48).
func BenchmarkFig3Matmul(b *testing.B) {
	for _, c := range fig3Cores {
		n := c
		if n < 48 {
			n = 48
		}
		b.Run(fmt.Sprintf("cores-%d", c), func(b *testing.B) {
			runPoint(b, "matmul-scalar", Params{N: n, Cores: c}, DefaultConfig(c))
		})
	}
}

// BenchmarkFig3SpMV sweeps core counts under the scalar SpMV workload
// (weak-scaled rows, constant nonzeros per row).
func BenchmarkFig3SpMV(b *testing.B) {
	for _, c := range fig3Cores {
		n := 64 * c
		b.Run(fmt.Sprintf("cores-%d", c), func(b *testing.B) {
			runPoint(b, "spmv-scalar",
				Params{N: n, Cores: c, Density: 16 / float64(n)}, DefaultConfig(c))
		})
	}
}

// --- E3: interleaving ablation (paper §III-A Figure 3 discussion) ---

// BenchmarkInterleaving re-enables Spike-style instruction batching. The
// paper disabled interleaving to keep per-cycle fidelity; quantum > 1
// recovers simulation speed at the cost of timing fidelity (the simcycles
// metric shrinks because several instructions retire per orchestrated
// cycle).
func BenchmarkInterleaving(b *testing.B) {
	for _, q := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("quantum-%d", q), func(b *testing.B) {
			cfg := DefaultConfig(8)
			cfg.InterleaveQuantum = q
			runPoint(b, "matmul-scalar", Params{N: 48, Cores: 8}, cfg)
		})
	}
}

// --- E4: L2 shared vs tile-private ---

func BenchmarkL2Sharing(b *testing.B) {
	for _, shared := range []bool{true, false} {
		name := "private"
		if shared {
			name = "shared"
		}
		b.Run(name, func(b *testing.B) {
			cfg := DefaultConfig(16)
			cfg.Uncore.L2Shared = shared
			runPoint(b, "spmv-vector-gather",
				Params{N: 1024, Cores: 16, Density: 0.02}, cfg)
		})
	}
}

// --- E5: bank mapping policies ---

func BenchmarkBankMapping(b *testing.B) {
	for _, mapping := range []string{"set-interleave", "page-to-bank"} {
		b.Run(mapping, func(b *testing.B) {
			cfg := DefaultConfig(16)
			if mapping == "page-to-bank" {
				cfg.Uncore.Mapping = uncore.PageToBank
			}
			runPoint(b, "spmv-vector-gather",
				Params{N: 1024, Cores: 16, Density: 0.02}, cfg)
		})
	}
}

// --- E6: NoC latency sensitivity ---

func BenchmarkNoCLatency(b *testing.B) {
	for _, lat := range []uint64{1, 8, 64} {
		b.Run(fmt.Sprintf("lat-%d", lat), func(b *testing.B) {
			cfg := DefaultConfig(8)
			cfg.Uncore.NoCLatency = lat
			runPoint(b, "stencil-vector", Params{N: 192, Cores: 8}, cfg)
		})
	}
}

// --- E7: dense vs sparse data movement across every kernel ---

func BenchmarkKernels(b *testing.B) {
	for _, name := range Kernels() {
		name := name
		b.Run(name, func(b *testing.B) {
			runPoint(b, name, Params{N: 64, Cores: 8, Density: 0.05}, DefaultConfig(8))
		})
	}
}

// --- E9 (extension): fast-forward ablation ---

// BenchmarkFastForward quantifies the cost of Coyote's tick-every-cycle
// orchestration versus jumping idle gaps: simulated cycles are identical,
// wall-clock time is not — exactly the overhead the paper attributes to
// running Spike with interleaving disabled.
func BenchmarkFastForward(b *testing.B) {
	for _, ff := range []bool{false, true} {
		name := "tick-every-cycle"
		if ff {
			name = "fast-forward"
		}
		b.Run(name, func(b *testing.B) {
			cfg := DefaultConfig(1)
			cfg.FastForward = ff
			cfg.Uncore.MemLatency = 400
			runPoint(b, "spmv-scalar",
				Params{N: 512, Cores: 1, Density: 0.02}, cfg)
		})
	}
}

// --- E10 (extension): Figure-2 LLC level ---

// BenchmarkLLC measures the third cache level from the paper's Figure 2
// example system: a capacity-bound sparse workload with and without a
// shared LLC in front of the memory controllers.
func BenchmarkLLC(b *testing.B) {
	for _, llc := range []bool{false, true} {
		name := "no-llc"
		if llc {
			name = "with-llc"
		}
		b.Run(name, func(b *testing.B) {
			cfg := DefaultConfig(8)
			// Shrink the L2 so the gathered x vector (32 KiB) no longer
			// fits there but is captured by the 2 MiB LLC.
			cfg.Uncore.L2.SizeBytes = 16 << 10
			cfg.Uncore.LLCEnable = llc
			runPoint(b, "spmv-vector-gather",
				Params{N: 4096, Cores: 8, Density: 0.01}, cfg)
		})
	}
}

// --- E11 (extension): L2 next-line prefetching (paper future work) ---

func BenchmarkPrefetch(b *testing.B) {
	// Latency-bound streaming: a single core exposes the full DRAM
	// round trip per line, which next-line prefetch hides.
	for _, depth := range []int{0, 2, 4} {
		b.Run(fmt.Sprintf("depth-%d", depth), func(b *testing.B) {
			cfg := DefaultConfig(1)
			cfg.Uncore.PrefetchDepth = depth
			runPoint(b, "copy-vector", Params{N: 16384, Cores: 1}, cfg)
		})
	}
}

// --- E12 (extension): DRAM row-buffer model (paper future work) ---

func BenchmarkRowBuffer(b *testing.B) {
	// Latency-bound sequential streaming: consecutive lines hit the open
	// 8 KiB row, completing in MemRowHitLat instead of MemLatency.
	for _, rowBits := range []uint{0, 13} {
		name := "flat-latency"
		if rowBits > 0 {
			name = "open-row"
		}
		b.Run(name, func(b *testing.B) {
			cfg := DefaultConfig(1)
			cfg.Uncore.MemRowBits = rowBits
			runPoint(b, "copy-vector", Params{N: 16384, Cores: 1}, cfg)
		})
	}
}

// --- E13 (extension): MCPU gather offload (paper §I, ACME) ---

// BenchmarkMCPUOffload evaluates the paper's own architectural proposal:
// routing sparse gathers to memory-controller CPUs as aggregate
// descriptors instead of per-element cache transactions. Two regimes show
// the crossover: with the gathered x vector L2-resident the cache path
// wins (reuse), with x thrashing a small L2 the MCPU path wins (no
// pollution, one round trip per access).
func BenchmarkMCPUOffload(b *testing.B) {
	regimes := []struct {
		name string
		n    int
		l2KB int
	}{
		{"resident", 2048, 256},
		{"thrashing", 8192, 16},
	}
	for _, r := range regimes {
		for _, offload := range []bool{false, true} {
			name := r.name + "/cache-path"
			if offload {
				name = r.name + "/mcpu-path"
			}
			b.Run(name, func(b *testing.B) {
				cfg := DefaultConfig(8)
				cfg.Hart.MCPUOffload = offload
				cfg.Uncore.L2.SizeBytes = r.l2KB << 10
				runPoint(b, "spmv-vector-gather",
					Params{N: r.n, Cores: 8, Density: 16 / float64(r.n)}, cfg)
			})
		}
	}
}

// --- microbenchmarks of the simulator substrate itself ---

// BenchmarkStepRate measures the raw single-core instruction rate on an
// L1-resident loop: the simulator's per-instruction cost floor.
func BenchmarkStepRate(b *testing.B) {
	prog, err := Assemble(`
	_start:
		li   t0, 200000
	loop:
		addi t1, t1, 1
		addi t2, t2, 2
		add  t3, t1, t2
		addi t0, t0, -1
		bnez t0, loop
		li a7, 93
		li a0, 0
		ecall
	`)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var total uint64
	for i := 0; i < b.N; i++ {
		sys, err := NewSystem(DefaultConfig(1))
		if err != nil {
			b.Fatal(err)
		}
		sys.LoadProgram(prog)
		res, err := sys.Run()
		if err != nil {
			b.Fatal(err)
		}
		total += res.Instructions
	}
	b.ReportMetric(float64(total)/1e6/b.Elapsed().Seconds(), "MIPS")
}

// BenchmarkRunLoop128Stalled measures the orchestrator's run loop in the
// regime the runnable-hart bitset targets: 128 cores that spend almost
// every cycle parked on L1-miss RAW stalls, so each simulated cycle has
// work for only a handful of harts. Every hart strides loads through a
// private 64 KiB region (a new cache line each iteration) and immediately
// consumes the loaded value.
func BenchmarkRunLoop128Stalled(b *testing.B) {
	prog, err := Assemble(`
	_start:
		csrr t0, mhartid
		li   s0, 0x10000000
		slli t1, t0, 16      # 64 KiB private region per hart
		add  s0, s0, t1
		li   t3, 256
	loop:
		ld   t4, 0(s0)       # miss: new line every iteration
		add  t5, t4, t0      # dependent use -> RAW stall until the fill
		addi s0, s0, 256
		addi t3, t3, -1
		bnez t3, loop
		li   a7, 93
		csrr a0, mhartid
		ecall
	`)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var total uint64
	for i := 0; i < b.N; i++ {
		sys, err := NewSystem(DefaultConfig(128))
		if err != nil {
			b.Fatal(err)
		}
		sys.LoadProgram(prog)
		res, err := sys.Run()
		if err != nil {
			b.Fatal(err)
		}
		total += res.Instructions
	}
	b.ReportMetric(float64(total)/1e6/b.Elapsed().Seconds(), "MIPS")
}

// --- DESIGN.md §14: functional fast-forward throughput ---

// BenchmarkFunctionalMode measures the speedup lever of sampled
// simulation: the same matmul point executed in detailed mode and
// entirely in functional fast-forward (ISA-exact, cache-warming, no
// event calendar). The acceptance floor is a ≥5× MIPS ratio
// (TestFunctionalSpeedup enforces it; this benchmark reports the
// actual number).
func BenchmarkFunctionalMode(b *testing.B) {
	p := Params{N: 96, Cores: 4}
	b.Run("detailed", func(b *testing.B) {
		runPoint(b, "matmul-scalar", p, DefaultConfig(4))
	})
	b.Run("functional", func(b *testing.B) {
		var mips float64
		for i := 0; i < b.N; i++ {
			mips += functionalMIPS(b, p)
		}
		b.ReportMetric(mips/float64(b.N), "MIPS")
	})
}

// functionalMIPS runs matmul-scalar to completion in functional mode
// and reports simulated instructions per wall-clock second.
func functionalMIPS(tb testing.TB, p Params) float64 {
	tb.Helper()
	sys, err := PrepareKernel("matmul-scalar", p, DefaultConfig(p.Cores))
	if err != nil {
		tb.Fatal(err)
	}
	start := time.Now() //coyote:wallclock-ok benchmark throughput measurement
	done, err := sys.RunFunctional(^uint64(0) / 2)
	elapsed := time.Since(start) //coyote:wallclock-ok benchmark throughput measurement
	if err != nil {
		tb.Fatal(err)
	}
	if !done {
		tb.Fatal("functional run did not finish")
	}
	return float64(sys.TotalInstret()) / 1e6 / elapsed.Seconds()
}

// TestFunctionalSpeedup enforces the sampled-simulation acceptance
// floor: functional fast-forward must retire instructions at ≥5× the
// detailed-mode rate on matmul-scalar. The observed ratio is ~8-9× on
// an unloaded host; 5× still catches a functional path that
// accidentally grew calendar-shaped overhead. Wall-clock measurements
// on shared CI hosts swing by tens of percent between back-to-back
// runs, so each attempt measures detailed and functional as an
// adjacent pair and the best of three attempts is enforced — noise
// only ever lowers the ratio, never raises a broken path above the
// floor across all three pairs.
func TestFunctionalSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock measurement")
	}
	if san.Enabled {
		t.Skip("the sanitizer build bypasses the warming filters and cross-checks every access, so the wall-clock ratio is not meaningful")
	}
	p := Params{N: 96, Cores: 4}
	// Warm-up pass for both paths (page faults, heap growth), then the
	// measured passes.
	if _, err := RunKernel("matmul-scalar", p, DefaultConfig(4)); err != nil {
		t.Fatal(err)
	}
	functionalMIPS(t, p)
	best := 0.0
	for attempt := 0; attempt < 3; attempt++ {
		res, err := RunKernel("matmul-scalar", p, DefaultConfig(4))
		if err != nil {
			t.Fatal(err)
		}
		detailed := res.MIPS()
		functional := functionalMIPS(t, p)
		ratio := functional / detailed
		t.Logf("attempt %d: detailed %.1f MIPS, functional %.1f MIPS (%.1fx)", attempt+1, detailed, functional, ratio)
		if ratio > best {
			best = ratio
		}
		if best >= 5 {
			break
		}
	}
	if best < 5 {
		t.Errorf("functional fast-forward only %.2fx detailed-mode MIPS, want >=5x", best)
	}
}
