// Package coyote is the public API of Coyote-Go, an execution-driven
// multicore RISC-V simulator for HPC design-space exploration, reproducing
// "Coyote: An Open Source Simulation Tool to Enable RISC-V in HPC"
// (Perez, Fell, Davis — DATE 2021).
//
// The simulator couples an instruction-level RV64IMAFD+V functional model
// with per-core L1 caches (the role Spike plays in Coyote) to an
// event-driven memory hierarchy of banked L2s, an idealized crossbar NoC
// and bandwidth-limited memory controllers (the role Sparta plays). An
// orchestrator steps every active core one instruction per cycle, stalls
// cores on RAW dependencies against in-flight misses, and keeps the event
// model in sync.
//
// Quick start:
//
//	cfg := coyote.DefaultConfig(8)
//	res, err := coyote.RunKernel("matmul-scalar", coyote.Params{N: 48, Cores: 8}, cfg)
//	fmt.Print(res.Report())
//
// Arbitrary bare-metal programs can also be assembled from RISC-V source
// with Assemble and run on a System built with NewSystem.
package coyote

import (
	"fmt"

	"github.com/coyote-sim/coyote/internal/asm"
	"github.com/coyote-sim/coyote/internal/core"
	"github.com/coyote-sim/coyote/internal/kernels"
	"github.com/coyote-sim/coyote/internal/rcache"
	"github.com/coyote-sim/coyote/internal/trace"
)

// Config describes a simulated system: core count, tiling, per-core VPU
// and L1 geometry, and the uncore (L2 banks, NoC, memory controllers).
type Config = core.Config

// Result carries everything a run produced: cycles, instructions,
// per-hart statistics, cache and memory-traffic counters, and wall-clock
// throughput (MIPS — the paper's Figure 3 metric).
type Result = core.Result

// Params parameterises a built-in kernel (problem size, hart count,
// sparsity, seed).
type Params = kernels.Params

// System is a fully wired simulated machine; use it directly to run
// custom programs or to inspect architectural state after a run.
type System = core.System

// Program is an assembled bare-metal binary image.
type Program = asm.Program

// Kernel is one of the built-in paper workloads.
type Kernel = kernels.Kernel

// TraceWriter records Paraver traces (.prv/.pcf/.row) of L1 misses and
// stalls; attach one to System.Tracer before Run.
type TraceWriter = trace.Writer

// DefaultConfig returns the DESIGN.md §6 system for the given core count:
// 8-core tiles, 16 KiB L1s, two 256 KiB L2 banks per tile (shared),
// crossbar NoC, one memory controller per four tiles.
func DefaultConfig(cores int) Config { return core.DefaultConfig(cores) }

// NewSystem builds a simulated machine from cfg.
func NewSystem(cfg Config) (*System, error) { return core.New(cfg) }

// Assemble translates RISC-V assembly source into a loadable Program.
func Assemble(src string) (*Program, error) { return asm.Assemble(src) }

// Kernels lists the built-in kernel names.
func Kernels() []string { return kernels.Names() }

// GetKernel returns a built-in kernel by name.
func GetKernel(name string) (*Kernel, error) { return kernels.Get(name) }

// NewTraceWriter creates a Paraver trace writer for a system of n harts.
func NewTraceWriter(nHarts int) *TraceWriter { return trace.NewWriter(nHarts) }

// PrepareKernel assembles a built-in kernel, loads it into a fresh system
// built from cfg, and runs the kernel's data setup. The caller runs the
// returned system (optionally attaching a tracer first) and may verify
// with VerifyKernel.
func PrepareKernel(name string, p Params, cfg Config) (*System, error) {
	k, err := kernels.Get(name)
	if err != nil {
		return nil, err
	}
	if p.Cores == 0 {
		p.Cores = cfg.Cores
	}
	if p.Cores != cfg.Cores {
		return nil, fmt.Errorf("coyote: params request %d cores but config has %d",
			p.Cores, cfg.Cores)
	}
	prog, err := asm.Assemble(k.Source)
	if err != nil {
		return nil, fmt.Errorf("coyote: assembling %s: %w", name, err)
	}
	sys, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	sys.LoadProgram(prog)
	k.Setup(sys.Mem, sys.MustSymbol("args"), p)
	return sys, nil
}

// VerifyKernel checks a finished run's outputs against the host-side
// reference implementation.
func VerifyKernel(sys *System, name string, p Params) error {
	k, err := kernels.Get(name)
	if err != nil {
		return err
	}
	if p.Cores == 0 {
		p.Cores = sys.Config().Cores
	}
	return k.Verify(sys.Mem, sys.MustSymbol("args"), p)
}

// RunKernel prepares, runs and verifies a built-in kernel in one call.
//coyote:globalfree
func RunKernel(name string, p Params, cfg Config) (*Result, error) {
	if p.Cores == 0 {
		p.Cores = cfg.Cores
	}
	sys, err := PrepareKernel(name, p, cfg)
	if err != nil {
		return nil, err
	}
	res, err := sys.Run()
	if err != nil {
		return nil, fmt.Errorf("coyote: running %s: %w", name, err)
	}
	if err := VerifyKernel(sys, name, p); err != nil {
		return nil, fmt.Errorf("coyote: %s produced wrong results: %w", name, err)
	}
	return res, nil
}

// ResultCache is the content-addressed, persistent simulation-result
// cache with request coalescing (internal/rcache). CI-enforced
// determinism — bit-identical committed state for any worker count and
// interleave — is what makes it sound: identical canonical key implies
// identical Result.
type ResultCache = rcache.Cache

// CacheKey is the canonical content address of one simulation point.
type CacheKey = rcache.Key

// CacheStatus reports how a cached lookup was satisfied: CacheMiss (the
// point was simulated), CacheHit (served from memory or disk), or
// CacheCoalesced (shared an identical in-flight simulation).
type CacheStatus = rcache.Status

// CacheStats snapshots a ResultCache's outcome counters.
type CacheStats = rcache.Stats

const (
	CacheMiss      = rcache.Miss
	CacheHit       = rcache.Hit
	CacheCoalesced = rcache.Coalesced
)

// CacheSchemaVersion is the result-cache key schema version; it must be
// bumped with any semantics-affecting simulator change (see
// internal/rcache and DESIGN.md §11).
const CacheSchemaVersion = rcache.SchemaVersion

// OpenResultCache opens a persistent result cache rooted at dir
// (DefaultCacheDir() when dir is empty) with an in-process LRU of
// memEntries entries (a default bound when <= 0) in front of it.
func OpenResultCache(dir string, memEntries int) (*ResultCache, error) {
	return rcache.Open(dir, memEntries)
}

// NewResultCache creates a memory-only result cache: in-process reuse
// and single-flight coalescing without persistence.
func NewResultCache(memEntries int) *ResultCache { return rcache.New(memEntries) }

// DefaultCacheDir returns the default persistent cache location
// (~/.cache/coyote or the OS equivalent).
func DefaultCacheDir() (string, error) { return rcache.DefaultDir() }

// KeyForPoint computes the canonical cache key of (kernel, params,
// config): the SHA-256 of a versioned explicit encoding of the kernel's
// assembled program and every semantics-affecting parameter. Execution
// strategy (Workers, InterleaveQuantum, FastForward, superblock knobs)
// is excluded — the golden determinism matrix proves it cannot change
// results, so all strategies share one cache line per logical point.
func KeyForPoint(kernel string, p Params, cfg Config) (CacheKey, error) {
	return rcache.KeyForPoint(kernel, p, cfg)
}

// RunKernelCached is RunKernel backed by a result cache: on a repeat
// point the simulation is skipped entirely and the cached Result is
// returned (with WallTime 0 — served points cost no simulation time).
// A nil cache degrades to a plain RunKernel reported as CacheMiss.
// Verification still happens on every real simulation (inside the
// compute path); hits were verified when first computed, and the
// cache's verify sampling (ResultCache.SetVerify) can re-prove any
// fraction of them on top.
//coyote:globalfree
func RunKernelCached(name string, p Params, cfg Config, c *ResultCache) (*Result, CacheStatus, error) {
	if c == nil {
		res, err := RunKernel(name, p, cfg)
		return res, CacheMiss, err
	}
	key, err := KeyForPoint(name, p, cfg)
	if err != nil {
		return nil, CacheMiss, err
	}
	return c.GetOrCompute(key, func() (*Result, error) {
		return RunKernel(name, p, cfg)
	})
}
