package coyote

import (
	"strings"
	"testing"
)

func TestPublicRunKernel(t *testing.T) {
	cfg := DefaultConfig(4)
	res, err := RunKernel("axpy-vector", Params{N: 256}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions == 0 || res.Cycles == 0 {
		t.Errorf("empty result: %+v", res)
	}
	if res.MIPS() <= 0 {
		t.Error("MIPS should be positive")
	}
}

func TestPublicKernelList(t *testing.T) {
	names := Kernels()
	if len(names) < 10 {
		t.Fatalf("kernels = %v", names)
	}
	for _, n := range names {
		k, err := GetKernel(n)
		if err != nil || k.Source == "" {
			t.Errorf("kernel %s broken: %v", n, err)
		}
	}
}

func TestPublicUnknownKernel(t *testing.T) {
	if _, err := RunKernel("not-a-kernel", Params{}, DefaultConfig(1)); err == nil {
		t.Error("unknown kernel accepted")
	}
}

func TestPublicCoreMismatch(t *testing.T) {
	_, err := PrepareKernel("axpy-scalar", Params{N: 64, Cores: 2}, DefaultConfig(4))
	if err == nil || !strings.Contains(err.Error(), "cores") {
		t.Errorf("core mismatch not caught: %v", err)
	}
}

func TestPublicCustomProgram(t *testing.T) {
	prog, err := Assemble(`
	_start:
		li   t0, 10
		li   t1, 0
	loop:
		add  t1, t1, t0
		addi t0, t0, -1
		bnez t0, loop
		la   a0, result
		sd   t1, 0(a0)
		li   a7, 93
		li   a0, 0
		ecall
	.data
	result: .dword 0
	`)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	sys.LoadProgram(prog)
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if got := sys.Mem.Read64(sys.MustSymbol("result")); got != 55 {
		t.Errorf("sum = %d, want 55", got)
	}
}

func TestPublicTraceWriter(t *testing.T) {
	cfg := DefaultConfig(2)
	sys, err := PrepareKernel("axpy-scalar", Params{N: 64, Cores: 2}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tw := NewTraceWriter(2)
	sys.Tracer = tw
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if tw.Len() == 0 {
		t.Error("no trace events recorded")
	}
	if err := VerifyKernel(sys, "axpy-scalar", Params{N: 64, Cores: 2}); err != nil {
		t.Error(err)
	}
}

// TestDeterminism: two identical runs must agree cycle-for-cycle — the
// property that makes trace-based analysis and A/B architecture
// comparisons meaningful.
func TestDeterminism(t *testing.T) {
	run := func() *Result {
		res, err := RunKernel("spmv-vector-gather",
			Params{N: 256, Cores: 8, Density: 0.05}, DefaultConfig(8))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.Instructions != b.Instructions {
		t.Errorf("nondeterministic: %d/%d vs %d/%d cycles/instrs",
			a.Cycles, a.Instructions, b.Cycles, b.Instructions)
	}
	if a.L1D != b.L1D || a.L2Stats() != b.L2Stats() {
		t.Error("cache statistics differ between identical runs")
	}
	for k, v := range a.UncoreRaw {
		if b.UncoreRaw[k] != v {
			t.Errorf("uncore counter %s differs: %d vs %d", k, v, b.UncoreRaw[k])
		}
	}
}
