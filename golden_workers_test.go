package coyote

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"
)

// runKernelTraced runs one kernel with a Paraver tracer attached and
// returns the canonical stats string, the rendered .prv bytes and the
// Result.
func runKernelTraced(t *testing.T, name string, p Params, workers int) (string, []byte, *Result) {
	t.Helper()
	return runKernelTracedCfg(t, name, p, func(c *Config) { c.Workers = workers })
}

// runKernelTracedCfg is runKernelTraced with an arbitrary config mutation
// (worker count, interleave quantum, execution engine).
func runKernelTracedCfg(t *testing.T, name string, p Params, mutate func(*Config)) (string, []byte, *Result) {
	t.Helper()
	cfg := DefaultConfig(p.Cores)
	mutate(&cfg)
	workers := cfg.Workers
	sys, err := PrepareKernel(name, p, cfg)
	if err != nil {
		t.Fatalf("prepare (workers=%d): %v", workers, err)
	}
	tw := NewTraceWriter(cfg.Cores)
	sys.Tracer = tw
	res, err := sys.Run()
	if err != nil {
		t.Fatalf("run (workers=%d): %v", workers, err)
	}
	if err := VerifyKernel(sys, name, p); err != nil {
		t.Fatalf("verify (workers=%d): %v", workers, err)
	}
	var buf bytes.Buffer
	if err := tw.WritePRV(&buf); err != nil {
		t.Fatalf("rendering .prv (workers=%d): %v", workers, err)
	}
	return canonical(res), buf.Bytes(), res
}

// workerMatrix returns the deduplicated worker counts the determinism
// matrix must cover: 1, 2, 3 and the host's CPU count.
func workerMatrix() []int {
	candidates := []int{1, 2, 3, runtime.NumCPU()}
	var out []int
	for _, w := range candidates {
		dup := false
		for _, seen := range out {
			if seen == w {
				dup = true
			}
		}
		if !dup {
			out = append(out, w)
		}
	}
	return out
}

// TestWorkersDeterminismGolden is the parallel-orchestrator correctness
// oracle: every kernel must produce byte-identical .prv traces and
// identical canonical statistics (cycles, per-hart counters, the full
// uncore snapshot) for Workers ∈ {1, 2, 3, NumCPU}. The barrier kernels
// double as a natural stress of the spec-unsafe (atomic) serial fallback.
func TestWorkersDeterminismGolden(t *testing.T) {
	params := Params{N: 64, Cores: 4, Density: 0.05}
	for _, name := range Kernels() {
		t.Run(name, func(t *testing.T) {
			baseStats, basePRV, _ := runKernelTraced(t, name, params, 1)
			for _, w := range workerMatrix()[1:] {
				stats, prv, res := runKernelTraced(t, name, params, w)
				if stats != baseStats {
					t.Errorf("workers=%d changed simulated stats:\n--- workers=1\n%s--- workers=%d\n%s",
						w, baseStats, w, stats)
				}
				if !bytes.Equal(prv, basePRV) {
					t.Errorf("workers=%d changed the .prv trace (%d vs %d bytes)",
						w, len(basePRV), len(prv))
				}
				if got := res.Par.SpecQuanta; got == 0 {
					t.Errorf("workers=%d reported no speculative quanta; the parallel path did not run", w)
				}
			}
		})
	}
}

// TestWorkersFour pins the CI matrix point the acceptance criteria name
// explicitly: every kernel simulated with Workers=4 (more workers than the
// typical CI host has cores — the pool must degrade gracefully) matches
// the sequential run bit for bit. The -race lane runs this test to check
// the pool's happens-before edges under an oversubscribed scheduler.
func TestWorkersFour(t *testing.T) {
	params := Params{N: 48, Cores: 8, Density: 0.05}
	for _, name := range Kernels() {
		t.Run(name, func(t *testing.T) {
			baseStats, basePRV, _ := runKernelTraced(t, name, params, 1)
			stats, prv, res := runKernelTraced(t, name, params, 4)
			if stats != baseStats {
				t.Errorf("workers=4 changed simulated stats:\n--- workers=1\n%s--- workers=4\n%s",
					baseStats, stats)
			}
			if !bytes.Equal(prv, basePRV) {
				t.Errorf("workers=4 changed the .prv trace (%d vs %d bytes)",
					len(basePRV), len(prv))
			}
			if res.Par.SpecQuanta == 0 {
				t.Error("workers=4 reported no speculative quanta; the parallel path did not run")
			}
		})
	}
}

// TestWorkersInterleaveMatrix is the superblock engine's correctness
// oracle. For interleave quanta {1, 2, 8, 64} the golden baseline is the
// sequential run on the superblock engine; against it the matrix checks
//
//   - Workers=4 on the superblock engine (speculative parallel path),
//   - Workers=1 on the per-instruction reference engine
//     (Hart.DisableBlockCache), and
//   - Workers=4 on the reference engine,
//
// all of which must produce byte-identical .prv traces and identical
// canonical statistics: StepBlock is required to be timing-equivalent to
// per-instruction stepping under every interleave and worker count, not
// merely to compute the same registers. The kernels cover the scalar,
// vector-gather and atomic (spec-unsafe fallback) execution shapes.
func TestWorkersInterleaveMatrix(t *testing.T) {
	params := Params{N: 48, Cores: 4, Density: 0.05}
	kernels := []string{"matmul-scalar", "spmv-vector-gather", "histogram-atomic"}
	variants := []struct {
		name    string
		workers int
		refEng  bool
	}{
		{"workers4-block", 4, false},
		{"workers1-reference", 1, true},
		{"workers4-reference", 4, true},
	}
	for _, name := range kernels {
		for _, q := range []int{1, 2, 8, 64} {
			t.Run(fmt.Sprintf("%s/interleave%d", name, q), func(t *testing.T) {
				baseStats, basePRV, _ := runKernelTracedCfg(t, name, params, func(c *Config) {
					c.InterleaveQuantum = q
				})
				for _, v := range variants {
					stats, prv, _ := runKernelTracedCfg(t, name, params, func(c *Config) {
						c.InterleaveQuantum = q
						c.Workers = v.workers
						c.Hart.DisableBlockCache = v.refEng
					})
					if stats != baseStats {
						t.Errorf("%s changed simulated stats:\n--- baseline\n%s--- %s\n%s",
							v.name, baseStats, v.name, stats)
					}
					if !bytes.Equal(prv, basePRV) {
						t.Errorf("%s changed the .prv trace (%d vs %d bytes)",
							v.name, len(basePRV), len(prv))
					}
				}
			})
		}
	}
}

// conflictSrc is a deliberately racy two-hart program: both harts hammer
// plain (non-atomic) load/add/store cycles on the *same* shared
// doubleword. The two loop bodies have different lengths, so the harts'
// relative phase drifts through every alignment — including the one where
// the lower-index hart's store lands in the same cycle as the
// higher-index hart's load, which is exactly the read-write conflict the
// commit walk must catch and re-execute serially. The final counter value
// is interleaving-defined, so any deviation from the sequential schedule
// shows up in memory, not just in the statistics.
const conflictSrc = `
_start:
	la   s0, args
	csrr s1, mhartid
	li   t0, 400         # iterations
	beq  s1, zero, loop0
loop1:                       # hart 1+: 6-instruction body
	ld   t1, 0(s0)
	addi t1, t1, 1
	addi t2, t2, 0       # phase-drift padding
	sd   t1, 0(s0)
	addi t0, t0, -1
	bne  t0, zero, loop1
	j    done
loop0:                       # hart 0: 5-instruction body
	ld   t1, 0(s0)
	addi t1, t1, 1
	sd   t1, 0(s0)
	addi t0, t0, -1
	bne  t0, zero, loop0
done:
	li   a7, 93
	csrr a0, mhartid
	ecall
.data
.align 6
args: .zero 128
`

// TestWorkersForcedConflict pins the re-execution fallback: with two
// harts racing plain stores against loads of one shared line, Workers=2
// must (a) detect read-write conflicts, (b) still commit the exact
// sequential interleaving — identical stats, identical .prv trace,
// identical final memory value.
func TestWorkersForcedConflict(t *testing.T) {
	prog, err := Assemble(conflictSrc)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	run := func(workers int) (string, []byte, uint64, *Result) {
		cfg := DefaultConfig(2)
		cfg.Workers = workers
		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatalf("new system (workers=%d): %v", workers, err)
		}
		sys.LoadProgram(prog)
		tw := NewTraceWriter(2)
		sys.Tracer = tw
		res, err := sys.Run()
		if err != nil {
			t.Fatalf("run (workers=%d): %v", workers, err)
		}
		var buf bytes.Buffer
		if err := tw.WritePRV(&buf); err != nil {
			t.Fatalf("rendering .prv (workers=%d): %v", workers, err)
		}
		return canonical(res), buf.Bytes(), sys.Mem.Read64(sys.MustSymbol("args")), res
	}

	seqStats, seqPRV, seqCounter, _ := run(1)
	parStats, parPRV, parCounter, parRes := run(2)

	if parStats != seqStats {
		t.Errorf("workers=2 changed simulated stats:\n--- workers=1\n%s--- workers=2\n%s",
			seqStats, parStats)
	}
	if !bytes.Equal(parPRV, seqPRV) {
		t.Errorf("workers=2 changed the .prv trace (%d vs %d bytes)", len(seqPRV), len(parPRV))
	}
	if parCounter != seqCounter {
		t.Errorf("workers=2 changed the racy counter: sequential %d, parallel %d",
			seqCounter, parCounter)
	}
	if parRes.Par.Conflicts == 0 {
		t.Errorf("expected read-write conflicts with two harts racing one line; Par=%+v", parRes.Par)
	}
	if parRes.Par.Commits == 0 {
		t.Errorf("expected committed speculations; Par=%+v", parRes.Par)
	}
}
