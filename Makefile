GO ?= go
FUZZTIME ?= 60s

.PHONY: all build test race golden-workers lint lint-flow vet bench-smoke bench-block san fuzz cache-bench checkpoint sample mut mut-smoke mut-pinned ci

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Full race lane: guards the sweep harness and the in-cycle parallel
# orchestrator (Config.Workers > 1). The explicit TestWorkersFour pass
# simulates every kernel with Workers=4 — more workers than most CI hosts
# have cores — so the pool's happens-before edges get checked under an
# oversubscribed scheduler too.
race:
	$(GO) test -race ./...
	$(GO) test -race -run 'TestWorkersFour' .

# Workers>1 golden-trace lane: byte-identical .prv traces and cycle counts
# for Workers ∈ {1, 2, 3, NumCPU}, plus the forced same-line conflict that
# exercises the serial re-execution fallback. The prefix also matches
# TestWorkersInterleaveMatrix: the superblock engine diffed bit-exactly
# against the single-step reference across interleave {1,2,8,64} ×
# workers {1,4}.
golden-workers:
	$(GO) test -run 'TestWorkers' -count 1 .

# coyotelint: the determinism & hot-path invariant suite (DESIGN.md §9).
# Zero findings required; exit 1 on findings, 2 on load failure.
lint:
	$(GO) run ./cmd/coyotelint ./...

# Just the interprocedural dataflow lanes (DESIGN.md §12): cache-key
# soundness, spec-layer write isolation, global-state freedom.
lint-flow:
	$(GO) run ./cmd/coyotelint -run keytaint,specwrite,globalmut ./...

vet:
	$(GO) vet ./...

bench-smoke:
	$(GO) test -bench 'Fig3|RunLoop128Stalled' -benchtime 1x -run '^$$' ./

# Superblock engine microbenchmarks: block-cached stepping vs the
# single-step reference path, plus the 0 allocs/op pin on StepBlock.
bench-block:
	$(GO) test -bench 'StepBlock' -benchmem -run '^$$' ./internal/cpu/

# Sanitizer lane (DESIGN.md §10): the full test suite with the coyotesan
# runtime invariant checkers compiled in. The golden tests passing here
# proves the sanitizer is purely observational — cycle counts stay
# bit-identical to the default build — with zero violations.
san:
	$(GO) build -tags coyotesan ./...
	$(GO) test -tags coyotesan ./...

# Result-cache cold/warm benchmark (DESIGN.md §11): run the default
# explore grid twice against a throwaway cache directory and report the
# wall-clock for each. The second run must be all hits; CI enforces a
# ≥20× speedup, this target just shows the numbers.
cache-bench:
	$(GO) build -o /tmp/coyote-explore ./cmd/explore
	rm -rf /tmp/coyote-cache-bench
	@t0=$$(date +%s%N); \
	/tmp/coyote-explore -cache -cache-dir /tmp/coyote-cache-bench | tail -1; \
	t1=$$(date +%s%N); \
	/tmp/coyote-explore -cache -cache-dir /tmp/coyote-cache-bench | tail -1; \
	t2=$$(date +%s%N); \
	cold=$$(( (t1 - t0) / 1000000 )); warm=$$(( (t2 - t1) / 1000000 )); \
	if [ $$(( t2 - t1 )) -gt 0 ]; then speedup="$$(( (t1 - t0) / (t2 - t1) ))x"; else speedup="infx"; fi; \
	echo "cold $${cold} ms, warm $${warm} ms ($${speedup})"

# Checkpoint/restore gate (DESIGN.md §14): the golden suite proving
# stop-serialize-restore-resume reproduces the uninterrupted run's
# statistics and Paraver trace byte-for-byte on every kernel across the
# interleave × workers matrix, functional fast-forward architectural
# exactness, and a CLI round trip through an actual on-disk file.
checkpoint:
	$(GO) test -run 'TestCheckpointGolden|TestFunctionalFastForwardExact' -count 1 .
	$(GO) build -o /tmp/coyote-ckpt ./cmd/coyote
	/tmp/coyote-ckpt -kernel matmul-scalar -cores 4 -n 48 -checkpoint-at 5000 -checkpoint /tmp/coyote-ci.ckpt > /dev/null
	/tmp/coyote-ckpt -restore /tmp/coyote-ci.ckpt | grep -q 'verification     OK'

# Sampled-simulation smoke (DESIGN.md §14): SMARTS systematic sampling —
# the extrapolated cycle estimate must land inside the golden error
# fence, then a CLI demonstration run with the human-readable report.
sample:
	$(GO) test -run 'TestSampledVsFull' -count 1 -v .
	$(GO) build -o /tmp/coyote-ckpt ./cmd/coyote
	/tmp/coyote-ckpt -kernel matmul-scalar -cores 4 -n 96 -sample-period 40000 -sample-measure 8000 -sample-warmup 2000

# Fuzz smoke: explore random kernel/config combinations under the
# sanitizer for FUZZTIME on top of the committed seed corpus in
# testdata/fuzz/. Any invariant violation becomes a reproducible crasher.
fuzz:
	$(GO) test -tags coyotesan -run '^$$' -fuzz FuzzKernelSan -fuzztime $(FUZZTIME) .

# Mutation testing (DESIGN.md §13): the full catalog over the simulator
# packages, adjudicated by the oracle cascade. Exit 1 on any unannotated
# survivor. Verdicts are memoized under .coyotemut/cache, so re-runs only
# pay for mutants whose code (or whose oracles) changed.
mut:
	$(GO) run ./cmd/coyotemut ./internal/...

# The CI smoke lane: a deterministic seed-sampled subset of the catalog.
# Same exit contract as `mut`, same verdict cache.
mut-smoke:
	$(GO) run ./cmd/coyotemut -budget 40 -seed 1 ./internal/...

# Replay the pinned regression corpus (internal/mut/testdata/pinned/)
# through the full oracle cascade: every pin must be killed by exactly
# its designated layer. Opt-in via env because eight full cascades take
# ~7 minutes on one core — too heavy for the default `go test ./...`.
mut-pinned:
	COYOTE_MUT_PINNED=1 $(GO) test -count=1 -timeout 30m -run TestPinnedCorpus -v ./internal/mut/

# Mirrors every required lane of .github/workflows/ci.yml: the test job
# (build/vet/test/race/lint/bench-smoke), the golden-workers and
# coyotesan jobs (san includes the sanitizer build+suite, fuzz is the
# coyotesan job's smoke step), the rcache job's cold/warm benchmark, the
# checkpoint job's round-trip + sampled-vs-full lanes, and the coyotemut
# job's mutation smoke + pinned-corpus lanes.
ci: build vet test race golden-workers lint bench-smoke san fuzz cache-bench checkpoint sample mut-smoke mut-pinned
