GO ?= go

.PHONY: all build test race lint vet bench-smoke ci

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Full race lane: the simulator proper is single-threaded, but the sweep
# harness in the root package fans runs out across a worker pool.
race:
	$(GO) test -race ./...

# coyotelint: the determinism & hot-path invariant suite (DESIGN.md §9).
# Zero findings required; exit 1 on findings, 2 on load failure.
lint:
	$(GO) run ./cmd/coyotelint ./...

vet:
	$(GO) vet ./...

bench-smoke:
	$(GO) test -bench 'Fig3|RunLoop128Stalled' -benchtime 1x -run '^$$' ./

ci: build vet test race lint bench-smoke
