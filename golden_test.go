package coyote

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"testing"
)

// canonical renders every simulated-time observable of a Result — cycle
// count, instruction counts, per-hart stats, cache counters and the full
// uncore counter snapshot — into one comparable string. Wall-clock-only
// fields are deliberately excluded.
func canonical(res *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycles=%d instrs=%d\n", res.Cycles, res.Instructions)
	fmt.Fprintf(&b, "l1i=%+v\nl1d=%+v\n", res.L1I, res.L1D)
	for i, hs := range res.HartStats {
		fmt.Fprintf(&b, "hart%d=%+v\n", i, hs)
	}
	keys := make([]string, 0, len(res.UncoreRaw))
	for k := range res.UncoreRaw {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%d\n", k, res.UncoreRaw[k])
	}
	return b.String()
}

// TestDeterminismGolden runs every registered kernel twice at 4 cores and
// demands byte-identical simulated-time statistics — the repeatability
// property the paper leans on for design-space exploration ("the
// simulations are deterministic"). A third run with FastForward enabled
// must match too: skipping idle cycles is a wall-clock optimisation and
// may not perturb simulated timing.
// TestTraceDeterminismGolden runs every kernel twice with a Paraver
// tracer attached and demands the rendered .prv streams be byte-identical
// — a stronger check than aggregate statistics: the trace exposes the
// exact cycle and order of every miss, stall and wakeup, so any hidden
// source of nondeterminism (map iteration, wall-clock leakage) shows up
// as a diff even when the totals happen to agree.
func TestTraceDeterminismGolden(t *testing.T) {
	params := Params{N: 64, Cores: 4, Density: 0.05}
	for _, name := range Kernels() {
		t.Run(name, func(t *testing.T) {
			run := func() []byte {
				cfg := DefaultConfig(4)
				sys, err := PrepareKernel(name, params, cfg)
				if err != nil {
					t.Fatalf("prepare: %v", err)
				}
				tw := NewTraceWriter(cfg.Cores)
				sys.Tracer = tw
				if _, err := sys.Run(); err != nil {
					t.Fatalf("run: %v", err)
				}
				var buf bytes.Buffer
				if err := tw.WritePRV(&buf); err != nil {
					t.Fatalf("rendering .prv: %v", err)
				}
				return buf.Bytes()
			}
			first := run()
			second := run()
			if !bytes.Equal(first, second) {
				line := 1
				for i := 0; i < len(first) && i < len(second); i++ {
					if first[i] != second[i] {
						break
					}
					if first[i] == '\n' {
						line++
					}
				}
				t.Errorf("two identical runs produced different .prv traces (%d vs %d bytes, first diff around line %d)",
					len(first), len(second), line)
			}
		})
	}
}

func TestDeterminismGolden(t *testing.T) {
	params := Params{N: 64, Cores: 4, Density: 0.05}
	for _, name := range Kernels() {
		t.Run(name, func(t *testing.T) {
			run := func(ff bool) string {
				cfg := DefaultConfig(4)
				cfg.FastForward = ff
				res, err := RunKernel(name, params, cfg)
				if err != nil {
					t.Fatalf("run (fastforward=%v): %v", ff, err)
				}
				return canonical(res)
			}
			first := run(false)
			if second := run(false); second != first {
				t.Errorf("two identical runs diverged:\n--- first\n%s--- second\n%s",
					first, second)
			}
			if ff := run(true); ff != first {
				t.Errorf("FastForward changed simulated stats:\n--- ticking\n%s--- fastforward\n%s",
					first, ff)
			}
		})
	}
}
