package coyote

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"
)

func renderPRV(t *testing.T, tw *TraceWriter) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tw.WritePRV(&buf); err != nil {
		t.Fatalf("rendering .prv: %v", err)
	}
	return buf.Bytes()
}

// TestCheckpointGolden proves the checkpoint/restore tentpole property:
// for every kernel, stopping at a mid-run cycle C, serializing the
// machine to disk, restoring into a FRESH system and running to the end
// reproduces the uninterrupted run's statistics and Paraver trace
// byte-for-byte — across the interleave × workers execution-strategy
// matrix, so the quiescent stop boundary holds under the parallel
// speculative orchestrator too.
func TestCheckpointGolden(t *testing.T) {
	params := Params{N: 64, Cores: 4, Density: 0.05}
	modes := []struct{ interleave, workers int }{
		{1, 1}, {1, 4}, {8, 1}, {8, 4},
	}
	for _, name := range Kernels() {
		for _, m := range modes {
			t.Run(fmt.Sprintf("%s/il%d-w%d", name, m.interleave, m.workers), func(t *testing.T) {
				cfg := DefaultConfig(4)
				cfg.InterleaveQuantum = m.interleave
				cfg.Workers = m.workers

				// Uninterrupted reference run.
				sysFull, err := PrepareKernel(name, params, cfg)
				if err != nil {
					t.Fatalf("prepare: %v", err)
				}
				twFull := NewTraceWriter(cfg.Cores)
				sysFull.Tracer = twFull
				resFull, err := sysFull.Run()
				if err != nil {
					t.Fatalf("full run: %v", err)
				}
				wantStats := canonical(resFull)
				wantPRV := renderPRV(t, twFull)

				stopAt := resFull.Cycles / 2
				if stopAt == 0 {
					t.Skipf("run too short to split (%d cycles)", resFull.Cycles)
				}
				path := filepath.Join(t.TempDir(), "run.ckpt")
				ckCfg := cfg
				ckCfg.CheckpointAt = stopAt // recorded in the image; key-invariant
				twPre := NewTraceWriter(cfg.Cores)
				if _, stopped, err := RunToCheckpoint(name, params, ckCfg, stopAt, path, twPre); err != nil {
					t.Fatalf("checkpoint run: %v", err)
				} else if !stopped {
					t.Fatalf("program finished before cycle %d; no checkpoint", stopAt)
				}

				img, err := LoadCheckpoint(path)
				if err != nil {
					t.Fatalf("load: %v", err)
				}
				twPost := NewTraceWriter(cfg.Cores)
				sys, err := img.Restore(twPost)
				if err != nil {
					t.Fatalf("restore: %v", err)
				}
				res, err := sys.Run()
				if err != nil {
					t.Fatalf("resumed run: %v", err)
				}
				if err := VerifyKernel(sys, name, params); err != nil {
					t.Fatalf("resumed run produced wrong results: %v", err)
				}
				if got := canonical(res); got != wantStats {
					t.Errorf("restored run's stats diverge from the uninterrupted run:\n--- uninterrupted\n%s--- restored\n%s",
						wantStats, got)
				}
				if gotPRV := renderPRV(t, twPost); !bytes.Equal(gotPRV, wantPRV) {
					t.Errorf("restored run's .prv diverges (%d vs %d bytes)", len(gotPRV), len(wantPRV))
				}
			})
		}
	}
}

// TestFunctionalFastForwardExact proves the functional mode is
// architecturally exact: running a kernel entirely in fast-forward (no
// event calendar, caches warmed functionally) must still produce
// host-verified results on every kernel.
func TestFunctionalFastForwardExact(t *testing.T) {
	params := Params{N: 64, Cores: 4, Density: 0.05}
	for _, name := range Kernels() {
		t.Run(name, func(t *testing.T) {
			sys, err := PrepareKernel(name, params, DefaultConfig(4))
			if err != nil {
				t.Fatalf("prepare: %v", err)
			}
			done, err := sys.RunFunctional(^uint64(0) / 2)
			if err != nil {
				t.Fatalf("functional run: %v", err)
			}
			if !done {
				t.Fatalf("functional run did not finish")
			}
			if err := VerifyKernel(sys, name, params); err != nil {
				t.Fatalf("functional execution produced wrong results: %v", err)
			}
		})
	}
}

// TestSampledVsFull validates the sampled-simulation error bound on a
// deterministic point: the extrapolated cycle estimate must land within
// 35% of the full detailed run (systematic sampling of a phase-regular
// kernel; the seeded placement makes the outcome exactly reproducible,
// so this bound is a regression fence, not a statistical hope).
func TestSampledVsFull(t *testing.T) {
	params := Params{N: 48, Cores: 4}
	cfg := DefaultConfig(4)
	full, err := RunKernel("matmul-scalar", params, cfg)
	if err != nil {
		t.Fatalf("full run: %v", err)
	}
	sr, err := SampleKernel("matmul-scalar", params, cfg, SampleConfig{
		Period:  20000,
		Warmup:  2000,
		Measure: 5000,
		Seed:    42,
	})
	if err != nil {
		t.Fatalf("sampled run: %v", err)
	}
	if len(sr.Intervals) < 2 {
		t.Fatalf("want ≥2 measured intervals, got %d", len(sr.Intervals))
	}
	ratio := float64(sr.EstimatedCycles) / float64(full.Cycles)
	if ratio < 0.65 || ratio > 1.35 {
		t.Errorf("sampled estimate %d vs full %d cycles (ratio %.3f) outside ±35%%",
			sr.EstimatedCycles, full.Cycles, ratio)
	}
	t.Logf("full=%d estimated=%d [%d, %d] ratio=%.3f detailed=%d/%d instrs",
		full.Cycles, sr.EstimatedCycles, sr.EstimatedCyclesLo, sr.EstimatedCyclesHi,
		ratio, sr.DetailedInstret, sr.TotalInstret)
}
