package coyote_test

import (
	"fmt"

	coyote "github.com/coyote-sim/coyote"
)

// The simplest use: run a built-in kernel on a default system and read
// the architectural outcome. Simulated results are deterministic, so the
// output is stable.
func ExampleRunKernel() {
	cfg := coyote.DefaultConfig(4)
	res, err := coyote.RunKernel("axpy-scalar", coyote.Params{N: 256}, cfg)
	if err != nil {
		panic(err)
	}
	fmt.Println("cycles:", res.Cycles)
	fmt.Println("instructions:", res.Instructions)
	// Output:
	// cycles: 4986
	// instructions: 2608
}

// Custom bare-metal programs run through the same pipeline: assemble,
// load, simulate, inspect memory.
func ExampleAssemble() {
	prog, err := coyote.Assemble(`
	_start:
		li   t0, 6
		li   t1, 7
		mul  t2, t0, t1
		la   a0, answer
		sd   t2, 0(a0)
		li   a7, 93
		li   a0, 0
		ecall
	.data
	answer: .dword 0
	`)
	if err != nil {
		panic(err)
	}
	sys, err := coyote.NewSystem(coyote.DefaultConfig(1))
	if err != nil {
		panic(err)
	}
	sys.LoadProgram(prog)
	if _, err := sys.Run(); err != nil {
		panic(err)
	}
	fmt.Println(sys.Mem.Read64(sys.MustSymbol("answer")))
	// Output:
	// 42
}

// Architecture comparison — the tool's purpose: the same workload under
// two memory-system configurations, compared in simulated time.
func ExampleConfig_designSpace() {
	run := func(nocLatency uint64) uint64 {
		cfg := coyote.DefaultConfig(8)
		cfg.Uncore.NoCLatency = nocLatency
		res, err := coyote.RunKernel("stencil-vector", coyote.Params{N: 96}, cfg)
		if err != nil {
			panic(err)
		}
		return res.Cycles
	}
	fast, slow := run(2), run(64)
	fmt.Println("slow NoC costs more cycles:", slow > fast)
	// Output:
	// slow NoC costs more cycles: true
}
