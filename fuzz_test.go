package coyote

import (
	"path/filepath"
	"testing"

	"github.com/coyote-sim/coyote/internal/uncore"
)

// FuzzKernelSan drives randomized kernel/configuration combinations
// through the full simulator. In the default build it is a determinism
// and correctness fuzzer: every run must verify against the host
// reference and two identical runs must report identical cycle counts.
// Under `go test -tags coyotesan -fuzz FuzzKernelSan` it additionally
// turns every runtime invariant of internal/san into a fuzz oracle — a
// violated invariant panics and becomes a reproducible crasher.
//
// The committed seed corpus in testdata/fuzz/FuzzKernelSan covers each
// kernel family, the interesting uncore knobs (LLC, prefetch,
// page-to-bank mapping, tiny MSHR pools, DRAM row buffers) and the
// parallel orchestrator's worker-count dimension; `make fuzz` runs a
// short exploration on top of it.
//
// Every point additionally exercises the checkpoint dimension: the run
// is stopped at a fuzzer-derived cycle, serialized, restored into a
// fresh System and run to completion, and the reassembled statistics
// must match the uninterrupted run bit-for-bit (in both the default and
// -tags coyotesan builds, which also proves the shadow-state resync).
//
// workersSel picks the in-cycle worker pool size (1..4). Whenever the
// fuzzed config runs Workers > 1, the rerun below executes the identical
// point with Workers = 1, so the fuzzer doubles as a cross-worker
// determinism oracle: any divergence between the speculative parallel
// orchestrator and the sequential loop is a crasher.
func FuzzKernelSan(f *testing.F) {
	// kernel selector, core selector, problem-size selector, uncore knobs,
	// worker selector, data seed
	f.Add(byte(0), byte(0), byte(8), byte(0), byte(0), int64(1))     // smallest scalar run, default uncore
	f.Add(byte(1), byte(2), byte(12), byte(0x0b), byte(0), int64(2)) // 4 harts, LLC + prefetch + page-to-bank
	f.Add(byte(3), byte(1), byte(6), byte(0x30), byte(0), int64(3))  // tiny MSHR pool + row-buffer model
	f.Add(byte(5), byte(3), byte(10), byte(0x46), byte(0), int64(4)) // 8 harts, shared-L2 flip, fast-forward
	f.Add(byte(2), byte(2), byte(9), byte(0), byte(1), int64(5))     // 4 harts stepped by 2 workers
	f.Add(byte(6), byte(3), byte(11), byte(0x81), byte(3), int64(6)) // 8 harts, 4 workers, quantum=8 + LLC
	f.Fuzz(func(t *testing.T, kSel, coreSel, nSel, knobs, workersSel byte, seed int64) {
		names := Kernels()
		name := names[int(kSel)%len(names)]
		cores := 1 << (int(coreSel) % 4) // 1, 2, 4, 8

		cfg := DefaultConfig(cores)
		cfg.MaxCycles = 20_000_000 // a stuck run is a finding, not a timeout
		if knobs&0x01 != 0 {
			cfg.Uncore.LLCEnable = true
		}
		if knobs&0x02 != 0 {
			cfg.Uncore.PrefetchDepth = 2
		}
		if knobs&0x04 != 0 {
			cfg.FastForward = true
		}
		if knobs&0x08 != 0 {
			cfg.Uncore.Mapping = uncore.PageToBank
		}
		if knobs&0x10 != 0 {
			cfg.Uncore.L2MSHRs = 2 // starve the MSHR pool: exercises the retry path
		}
		if knobs&0x20 != 0 {
			cfg.Uncore.MemRowBits = 12
		}
		if knobs&0x40 != 0 {
			cfg.Uncore.L2Shared = !cfg.Uncore.L2Shared
		}
		if knobs&0x80 != 0 {
			cfg.InterleaveQuantum = 8
		}
		cfg.Workers = 1 + int(workersSel)%4

		p := Params{
			// 8..39 keeps even scalar matmul (N³ inner products) cheap
			// while still spilling the L1s on the larger sizes.
			N:     8 + int(nSel)%32,
			Cores: cores,
			Seed:  1 + seed&0xffff, // Seed 0 means "default" to withDefaults
		}

		res, err := RunKernel(name, p, cfg)
		if err != nil {
			t.Fatalf("%s %+v: %v", name, p, err)
		}
		// The rerun always uses the sequential orchestrator: for
		// Workers == 1 it is the classic same-config determinism check,
		// for Workers > 1 it pins the parallel path to the sequential
		// golden interleaving.
		seqCfg := cfg
		seqCfg.Workers = 1
		again, err := RunKernel(name, p, seqCfg)
		if err != nil {
			t.Fatalf("%s %+v rerun: %v", name, p, err)
		}
		if res.Cycles != again.Cycles {
			t.Fatalf("%s %+v is nondeterministic across workers=%d/1: %d cycles then %d",
				name, p, cfg.Workers, res.Cycles, again.Cycles)
		}

		// Checkpoint dimension: stop the same point at a fuzzer-derived
		// mid-run cycle, serialize, restore into a fresh System and run to
		// completion. The reassembled run must report bit-identical
		// simulated-time statistics — any state the serializers miss (or
		// resynchronize wrongly, including the coyotesan shadow state)
		// shows up as a diff or a sanitizer panic.
		if res.Cycles > 1 {
			ckAt := 1 + uint64(seed&0x7fffffff)%(res.Cycles-1)
			path := filepath.Join(t.TempDir(), "fuzz.ckpt")
			if _, stopped, err := RunToCheckpoint(name, p, cfg, ckAt, path, nil); err != nil {
				t.Fatalf("%s %+v checkpoint at %d: %v", name, p, ckAt, err)
			} else if stopped {
				img, err := LoadCheckpoint(path)
				if err != nil {
					t.Fatalf("%s %+v load: %v", name, p, err)
				}
				sys, err := img.Restore(nil)
				if err != nil {
					t.Fatalf("%s %+v restore at %d: %v", name, p, ckAt, err)
				}
				rres, err := sys.Run()
				if err != nil {
					t.Fatalf("%s %+v resumed run: %v", name, p, err)
				}
				if err := VerifyKernel(sys, name, p); err != nil {
					t.Fatalf("%s %+v resumed run wrong results: %v", name, p, err)
				}
				if canonical(rres) != canonical(res) {
					t.Fatalf("%s %+v restored at cycle %d diverges from the uninterrupted run:\n--- uninterrupted\n%s--- restored\n%s",
						name, p, ckAt, canonical(res), canonical(rres))
				}
			}
		}
	})
}
