// spmv-explore is the design-space-exploration walkthrough the paper
// motivates (§III-A, §IV): compare the three vector SpMV implementations
// and the scalar baseline across L2 organisations — shared vs.
// tile-private banks, and set-interleaved vs. page-to-bank mapping —
// reporting simulated cycles, cache behaviour, DRAM traffic and L2 bank
// load imbalance for every point.
// The grid is routed through the content-addressed result cache
// (DESIGN.md §11): the run simulates every point once, then re-runs the
// identical grid against the populated cache to show that warm repeats
// are served from disk — same numbers, a fraction of the wall-clock.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	coyote "github.com/coyote-sim/coyote"
	"github.com/coyote-sim/coyote/internal/uncore"
)

const (
	cores   = 16
	n       = 2048
	density = 0.02
)

type l2Variant struct {
	name    string
	shared  bool
	mapping uncore.MappingPolicy
}

func main() {
	kernels := []string{
		"spmv-scalar", "spmv-vector-gather", "spmv-vector-wide", "spmv-vector-ell",
	}
	variants := []l2Variant{
		{"shared/set-interleave", true, uncore.SetInterleave},
		{"shared/page-to-bank", true, uncore.PageToBank},
		{"private/set-interleave", false, uncore.SetInterleave},
	}

	cacheDir, err := os.MkdirTemp("", "spmv-explore-cache-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(cacheDir)
	rcache, err := coyote.OpenResultCache(cacheDir, 0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("SpMV design-space exploration: %d cores, n=%d, density=%.3f\n\n",
		cores, n, density)
	fmt.Printf("%-20s %-23s %12s %8s %8s %10s %10s\n",
		"kernel", "L2 organisation", "cycles", "L1D miss", "L2 miss",
		"DRAM bytes", "bank imbal")

	runGrid := func(print bool) {
		for _, kname := range kernels {
			for _, v := range variants {
				cfg := coyote.DefaultConfig(cores)
				cfg.Uncore.L2Shared = v.shared
				cfg.Uncore.Mapping = v.mapping
				res, _, err := coyote.RunKernelCached(kname,
					coyote.Params{N: n, Density: density}, cfg, rcache)
				if err != nil {
					log.Fatalf("%s / %s: %v", kname, v.name, err)
				}
				if !print {
					continue
				}
				l2 := res.L2Stats()
				fmt.Printf("%-20s %-23s %12d %7.2f%% %7.2f%% %10d %10.2f\n",
					kname, v.name, res.Cycles,
					100*res.L1D.MissRate(), 100*l2.MissRate(),
					res.MemTrafficBytes(cfg.Uncore.L2.LineBytes),
					imbalance(res.BankLoads()))
			}
			if print {
				fmt.Println()
			}
		}
	}

	coldStart := time.Now()
	runGrid(true)
	cold := time.Since(coldStart)

	fmt.Println("bank imbal = max/mean accesses across L2 banks (1.0 = perfectly even)")
	fmt.Println("Reading the table: gathers make the vector variants traffic-bound;")
	fmt.Println("page-to-bank concentrates the (page-local) x-vector gathers on fewer")
	fmt.Println("banks, which shows up directly in the imbalance column.")

	// Warm re-run: the identical grid again, now served entirely from
	// the result cache populated above — no simulation happens.
	warmStart := time.Now()
	runGrid(false)
	warm := time.Since(warmStart)

	fmt.Printf("\nwarm re-run of the same %d-point grid: %v vs %v cold",
		len(kernels)*len(variants), warm.Round(time.Millisecond),
		cold.Round(time.Millisecond))
	if warm > 0 {
		fmt.Printf(" (%.0f× faster)", float64(cold)/float64(warm))
	}
	fmt.Printf("\ncache: %s\n", rcache.Stats().Summary())
}

// imbalance returns max/mean of the per-bank access counts.
func imbalance(loads []uint64) float64 {
	if len(loads) == 0 {
		return 0
	}
	var sum, max uint64
	for _, l := range loads {
		sum += l
		if l > max {
			max = l
		}
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(loads))
	return float64(max) / mean
}
