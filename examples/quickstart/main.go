// Quickstart: simulate an 8-core RISC-V system running the vector daxpy
// kernel, verify the numerical result against the host, and print the
// statistics report — the smallest end-to-end use of the public API.
package main

import (
	"fmt"
	"log"

	coyote "github.com/coyote-sim/coyote"
)

func main() {
	// A DESIGN.md §6 default system: one 8-core tile, 16 KiB L1s, two
	// shared 256 KiB L2 banks, crossbar NoC, one memory controller.
	cfg := coyote.DefaultConfig(8)

	// Run y += a*x over 4096 doubles, split across the 8 cores. RunKernel
	// assembles the kernel from RISC-V source, loads it, generates the
	// data, simulates until every hart exits, and verifies the result.
	res, err := coyote.RunKernel("axpy-vector", coyote.Params{N: 4096}, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("axpy-vector on 8 simulated cores:")
	fmt.Print(res.Report())

	// Individual counters are available programmatically too.
	fmt.Printf("\nvector instructions: %d (%.1f%% of all retired)\n",
		totalVector(res), 100*float64(totalVector(res))/float64(res.Instructions))
	fmt.Printf("DRAM traffic: %d bytes\n", res.MemTrafficBytes(64))
}

func totalVector(res *coyote.Result) uint64 {
	var n uint64
	for _, h := range res.HartStats {
		n += h.VectorOps
	}
	return n
}
