// matmul-scaling runs the vector matrix multiplication at a fixed problem
// size across growing core counts, reporting *simulated* strong-scaling
// speedup — the kind of first-order architecture question (how far does
// this workload scale on this memory hierarchy?) that Coyote exists to
// answer quickly (paper §III).
package main

import (
	"fmt"
	"log"

	coyote "github.com/coyote-sim/coyote"
)

const n = 96

func main() {
	fmt.Printf("vector matmul %dx%d, strong scaling (simulated time)\n\n", n, n)
	fmt.Printf("%6s %12s %9s %11s %10s %10s\n",
		"cores", "cycles", "speedup", "efficiency", "L1D miss", "L2 miss")

	var base uint64
	for _, c := range []int{1, 2, 4, 8, 16, 32} {
		cfg := coyote.DefaultConfig(c)
		res, err := coyote.RunKernel("matmul-vector", coyote.Params{N: n}, cfg)
		if err != nil {
			log.Fatal(err)
		}
		if base == 0 {
			base = res.Cycles
		}
		speedup := float64(base) / float64(res.Cycles)
		fmt.Printf("%6d %12d %8.2fx %10.1f%% %9.2f%% %9.2f%%\n",
			c, res.Cycles, speedup, 100*speedup/float64(c),
			100*res.L1D.MissRate(), 100*res.L2Stats().MissRate())
	}

	fmt.Println("\nWhere efficiency falls off is where the memory system — not the")
	fmt.Println("cores — sets the limit; rerun with a different Config.Uncore to")
	fmt.Println("move the knee.")
}
