// stencil-noc sweeps the NoC crossbar latency under the vector stencil
// kernel (experiment E6) and writes a Paraver trace of the most
// interesting point (E8) — showing how a software developer uses Coyote
// to see whether an interconnect change matters for their workload before
// any FPGA work happens (paper §IV).
package main

import (
	"fmt"
	"log"
	"os"

	coyote "github.com/coyote-sim/coyote"
)

const (
	cores = 8
	n     = 512
)

func main() {
	fmt.Printf("vector 5-point stencil, %d cores, %dx%d grid\n\n", cores, n, n)
	fmt.Printf("%10s %12s %14s %12s\n", "NoC lat", "cycles", "slowdown", "stall cycles")

	var base uint64
	for _, lat := range []uint64{1, 4, 16, 64} {
		cfg := coyote.DefaultConfig(cores)
		cfg.Uncore.NoCLatency = lat
		res, err := coyote.RunKernel("stencil-vector", coyote.Params{N: n}, cfg)
		if err != nil {
			log.Fatal(err)
		}
		if base == 0 {
			base = res.Cycles
		}
		fmt.Printf("%10d %12d %13.2fx %12d\n",
			lat, res.Cycles, float64(res.Cycles)/float64(base), res.TotalStalls())
	}

	// Trace the default configuration for Paraver analysis.
	cfg := coyote.DefaultConfig(cores)
	sys, err := coyote.PrepareKernel("stencil-vector", coyote.Params{N: n, Cores: cores}, cfg)
	if err != nil {
		log.Fatal(err)
	}
	tw := coyote.NewTraceWriter(cores)
	sys.Tracer = tw
	if _, err := sys.Run(); err != nil {
		log.Fatal(err)
	}
	if err := coyote.VerifyKernel(sys, "stencil-vector", coyote.Params{N: n, Cores: cores}); err != nil {
		log.Fatal(err)
	}

	f, err := os.Create("stencil.prv")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := tw.WritePRV(f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote stencil.prv with %d events (inspect with cmd/prv2txt,\n", tw.Len())
	fmt.Println("or load into BSC Paraver together with matching .pcf/.row files)")
}
