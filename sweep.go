package coyote

import "sync"

// Point names one simulation job in a design-space sweep.
type Point struct {
	Name   string
	Kernel string
	Params Params
	Config Config
}

// PointResult pairs a Point with its outcome.
type PointResult struct {
	Point
	Result *Result
	Err    error
}

// Sweep runs a set of independent simulations concurrently on up to
// `workers` goroutines and returns results in input order. Each
// simulation is single-threaded and deterministic, so parallelism changes
// only wall-clock time (and therefore the MIPS numbers — use serial runs
// when measuring simulator throughput itself; simulated-time metrics are
// unaffected). workers ≤ 0 means one worker per point.
func Sweep(points []Point, workers int) []PointResult {
	if workers <= 0 || workers > len(points) {
		workers = len(points)
	}
	results := make([]PointResult, len(points))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := range points {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			p := points[i]
			res, err := RunKernel(p.Kernel, p.Params, p.Config)
			results[i] = PointResult{Point: p, Result: res, Err: err}
		}(i)
	}
	wg.Wait()
	return results
}
