package coyote

import (
	"runtime"
	"sync"
)

// Point names one simulation job in a design-space sweep.
type Point struct {
	Name   string
	Kernel string
	Params Params
	Config Config
}

// PointResult pairs a Point with its outcome.
type PointResult struct {
	Point
	Result *Result
	Err    error
	// Cache records how a cached sweep satisfied this point — "hit",
	// "miss" or "coalesced" (see rcache.Status). Empty when the sweep
	// ran without a cache.
	Cache string
}

// Sweep runs a set of independent simulations concurrently on a fixed
// pool of `workers` goroutines and returns results in input order. Each
// simulation is deterministic regardless of how the sweep is scheduled, so
// parallelism changes only wall-clock time (and therefore the MIPS numbers
// — use serial runs when measuring simulator throughput itself;
// simulated-time metrics are unaffected). workers ≤ 0 means one worker per
// point.
//
// Points whose Config.Workers > 1 each spin up their own in-cycle worker
// pool inside Run. To keep the total host goroutine count (outer sweep
// workers × largest inner pool) at or below GOMAXPROCS, the outer pool is
// capped accordingly — a sweep of parallel simulations degrades toward
// running them one after another rather than oversubscribing the host with
// spinning pools.
//coyote:globalfree
func Sweep(points []Point, workers int) []PointResult {
	workers = capOuterWorkers(workers, len(points),
		maxInnerWorkers(points), runtime.GOMAXPROCS(0))
	return sweepWith(points, workers, func(p Point) (*Result, string, error) {
		res, err := RunKernel(p.Kernel, p.Params, p.Config)
		return res, "", err
	})
}

// SweepCached is Sweep with every point routed through the
// content-addressed result cache: repeat points (across sweeps,
// sessions, or CI runs sharing a cache directory) are served without
// simulating, and duplicate points inside one sweep — including
// concurrent in-flight duplicates — are single-flighted so they
// simulate exactly once and fan the result out. Each PointResult's
// Cache field records the outcome. A nil cache degrades to Sweep.
//
// Served results carry WallTime 0 and zeroed Par counters: only the
// deterministic committed state is cached (see internal/rcache), which
// is also why cached sweeps must never feed simulator-throughput (MIPS)
// measurements — cmd/fig3 bypasses the cache by construction.
//coyote:globalfree
func SweepCached(points []Point, workers int, c *ResultCache) []PointResult {
	if c == nil {
		return Sweep(points, workers)
	}
	workers = capOuterWorkers(workers, len(points),
		maxInnerWorkers(points), runtime.GOMAXPROCS(0))
	return sweepWith(points, workers, func(p Point) (*Result, string, error) {
		res, status, err := RunKernelCached(p.Kernel, p.Params, p.Config, c)
		if err != nil {
			return nil, "", err
		}
		return res, status.String(), nil
	})
}

// maxInnerWorkers returns the largest per-point in-cycle worker pool the
// sweep will instantiate (at least 1). A point's pool never exceeds its
// core count, mirroring core.System.startWorkers.
func maxInnerWorkers(points []Point) int {
	inner := 1
	for _, p := range points {
		w := p.Config.Workers
		if w > p.Config.Cores {
			w = p.Config.Cores
		}
		if w > inner {
			inner = w
		}
	}
	return inner
}

// capOuterWorkers bounds the sweep's own pool so outer × inner host
// goroutines never exceed procs. The cap only engages when some point
// actually runs an inner pool (inner > 1): classic single-threaded sweeps
// keep the historical "as many workers as requested" contract, which the
// scheduler already time-slices fine.
func capOuterWorkers(workers, npoints, inner, procs int) int {
	if workers <= 0 || workers > npoints {
		workers = npoints
	}
	if inner > 1 {
		if budget := procs / inner; workers > budget {
			workers = budget
		}
		if workers < 1 && npoints > 0 {
			workers = 1
		}
	}
	return workers
}

// sweepWith is Sweep with the per-point run function injected, so tests
// can observe scheduling without paying for real simulations. Exactly
// min(workers, len(points)) goroutines are started; they pull point
// indices from a shared channel, so a slow point never blocks the rest of
// the queue behind an idle worker. run's second return is the cache
// status recorded in PointResult.Cache ("" for uncached runs).
func sweepWith(points []Point, workers int, run func(Point) (*Result, string, error)) []PointResult {
	if workers <= 0 || workers > len(points) {
		workers = len(points)
	}
	results := make([]PointResult, len(points))
	if workers == 0 {
		return results
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				p := points[i]
				res, status, err := run(p)
				results[i] = PointResult{Point: p, Result: res, Err: err, Cache: status}
			}
		}()
	}
	for i := range points {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}
