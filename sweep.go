package coyote

import "sync"

// Point names one simulation job in a design-space sweep.
type Point struct {
	Name   string
	Kernel string
	Params Params
	Config Config
}

// PointResult pairs a Point with its outcome.
type PointResult struct {
	Point
	Result *Result
	Err    error
}

// Sweep runs a set of independent simulations concurrently on a fixed
// pool of `workers` goroutines and returns results in input order. Each
// simulation is single-threaded and deterministic, so parallelism changes
// only wall-clock time (and therefore the MIPS numbers — use serial runs
// when measuring simulator throughput itself; simulated-time metrics are
// unaffected). workers ≤ 0 means one worker per point.
func Sweep(points []Point, workers int) []PointResult {
	return sweepWith(points, workers, func(p Point) (*Result, error) {
		return RunKernel(p.Kernel, p.Params, p.Config)
	})
}

// sweepWith is Sweep with the per-point run function injected, so tests
// can observe scheduling without paying for real simulations. Exactly
// min(workers, len(points)) goroutines are started; they pull point
// indices from a shared channel, so a slow point never blocks the rest of
// the queue behind an idle worker.
func sweepWith(points []Point, workers int, run func(Point) (*Result, error)) []PointResult {
	if workers <= 0 || workers > len(points) {
		workers = len(points)
	}
	results := make([]PointResult, len(points))
	if workers == 0 {
		return results
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				p := points[i]
				res, err := run(p)
				results[i] = PointResult{Point: p, Result: res, Err: err}
			}
		}()
	}
	for i := range points {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}
