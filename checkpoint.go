package coyote

import (
	"fmt"

	"github.com/coyote-sim/coyote/internal/checkpoint"
)

// Checkpoint is a loaded, integrity-verified simulator checkpoint: run
// identity (kernel, params, config), the assembled program, the Paraver
// trace prefix and the complete machine state at a quiescent cycle
// boundary. Restoring and running to completion reproduces the
// uninterrupted run's statistics and trace byte-for-byte.
type Checkpoint = checkpoint.Image

// CheckpointMeta identifies the run a checkpoint belongs to.
type CheckpointMeta = checkpoint.Meta

// CheckpointSchemaVersion versions the checkpoint binary layout; files
// written by other versions are rejected, never misparsed (see
// internal/checkpoint and DESIGN.md §14).
const CheckpointSchemaVersion = checkpoint.SchemaVersion

// LoadCheckpoint reads and integrity-checks a checkpoint file. Corrupt,
// truncated, foreign or version-mismatched files fail with an error —
// never a partial load. Continue the run with Checkpoint.Restore:
//
//	img, err := coyote.LoadCheckpoint("run.ckpt")
//	tw := coyote.NewTraceWriter(img.Meta.Config.Cores) // or nil
//	sys, err := img.Restore(tw)
//	res, err := sys.Run()
func LoadCheckpoint(path string) (*Checkpoint, error) {
	return checkpoint.Load(path)
}

// RunToCheckpoint prepares a kernel, simulates to stopCycle and writes a
// checkpoint of the stopped machine to path. tw, when non-nil, is
// attached as the tracer and its event prefix is embedded in the file.
// The partial Result covers the simulated prefix. stopped=false means
// the program finished before stopCycle; no checkpoint is written.
func RunToCheckpoint(name string, p Params, cfg Config, stopCycle uint64, path string, tw *TraceWriter) (*Result, bool, error) {
	if p.Cores == 0 {
		p.Cores = cfg.Cores
	}
	sys, err := PrepareKernel(name, p, cfg)
	if err != nil {
		return nil, false, err
	}
	if tw != nil {
		sys.Tracer = tw
	}
	res, stopped, err := sys.RunTo(stopCycle)
	if err != nil {
		return nil, false, err
	}
	if !stopped {
		return res, false, nil
	}
	meta := CheckpointMeta{Kernel: name, Params: p, Config: cfg}
	if err := checkpoint.Save(path, meta, sys.Program(), sys, tw); err != nil {
		return nil, false, fmt.Errorf("coyote: %w", err)
	}
	return res, true, nil
}
